"""Numerical emulation of tensor-core GEMMs on wide modular integers.

The paper's key numerical device (Section 3.4): an FP64 tensor core offers
53 bits of exact integer precision, so a 36-bit modular GEMM can be computed
exactly with only **3** FP64 plane products (B split into 12-bit planes) and
a 48-bit GEMM with **4** (both operands split into 24-bit halves) -- versus
25 and 36 INT8 plane products ("Booth complexity").

This module *executes* both strategies with numpy (``float64`` matmuls for
the FP64 path, small-integer matmuls for the INT8 path), asserting the
no-overflow invariants, so the claim is checked rather than assumed.  The
same plane counts feed the analytic cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..math import modarith

#: Mantissa precision of IEEE-754 binary64.
FP64_PRECISION_BITS = 53

#: Accumulator width of the INT8 tensor-core pipeline.
INT8_ACCUMULATOR_BITS = 31  # signed int32


class PrecisionOverflowError(RuntimeError):
    """Raised when a plane product would exceed the component's precision."""


@dataclass(frozen=True)
class SplitPlan:
    """How to decompose a wide-integer GEMM into narrow plane products.

    ``a_planes x b_planes`` plane GEMMs are required; operand A planes hold
    ``a_bits`` bits each and operand B planes ``b_bits`` bits each.
    """

    a_planes: int
    b_planes: int
    a_bits: int
    b_bits: int

    @property
    def products(self) -> int:
        """Number of plane GEMMs ("Booth complexity" in the paper)."""
        return self.a_planes * self.b_planes


def plan_fp64_split(wordsize_a: int, wordsize_b: int, k_dim: int) -> SplitPlan:
    """Cheapest exact FP64 decomposition of a ``wordsize``-bit GEMM.

    Finds the plane counts minimising ``a_planes * b_planes`` such that every
    accumulated dot product stays below ``2**53``:
    ``(2**a_bits - 1) * (2**b_bits - 1) * k_dim < 2**53``.

    Reproduces the paper's Section 3.4 arithmetic: 36-bit at K=16 -> 1x3
    planes (3 products); 48-bit at K=16 -> 2x2 planes (4 products).
    """
    if min(wordsize_a, wordsize_b, k_dim) < 1:
        raise ValueError("wordsizes and k_dim must be positive")
    best: Optional[SplitPlan] = None
    for a_planes in range(1, wordsize_a + 1):
        a_bits = -(-wordsize_a // a_planes)
        for b_planes in range(1, wordsize_b + 1):
            b_bits = -(-wordsize_b // b_planes)
            bound = ((1 << a_bits) - 1) * ((1 << b_bits) - 1) * k_dim
            if bound >= 1 << FP64_PRECISION_BITS:
                continue
            candidate = SplitPlan(a_planes, b_planes, a_bits, b_bits)
            if (
                best is None
                or candidate.products < best.products
                or (
                    candidate.products == best.products
                    and (candidate.a_planes, candidate.b_planes)
                    < (best.a_planes, best.b_planes)
                )
            ):
                best = candidate
            break  # more b_planes only increases the product count
    if best is None:
        raise PrecisionOverflowError(
            f"no FP64 split exists for {wordsize_a}x{wordsize_b}-bit GEMM at K={k_dim}"
        )
    return best


def plan_int8_split(wordsize_a: int, wordsize_b: int) -> SplitPlan:
    """INT8 decomposition: both operands in 8-bit planes (TensorFHE's scheme)."""
    if min(wordsize_a, wordsize_b) < 1:
        raise ValueError("wordsizes must be positive")
    a_planes = -(-wordsize_a // 8)
    b_planes = -(-wordsize_b // 8)
    return SplitPlan(a_planes, b_planes, 8, 8)


def _split_matrix(matrix: np.ndarray, plane_bits: int, plane_count: int) -> List[np.ndarray]:
    """Bit-slice an integer matrix into `plane_count` planes, low bits first."""
    values = np.asarray(matrix, dtype=object)
    mask = (1 << plane_bits) - 1
    return [((values >> (i * plane_bits)) & mask) for i in range(plane_count)]


def fp64_gemm_mod(
    a: np.ndarray, b: np.ndarray, modulus: int, plan: Optional[SplitPlan] = None
) -> np.ndarray:
    """Exact modular GEMM through FP64 plane products (TCU FP64 emulation).

    ``a`` is ``M x K``, ``b`` is ``K x N``; entries must be reduced modulo
    `modulus`.  Each plane product runs as a genuine ``float64`` matmul --
    the same arithmetic the A100's FP64 tensor core performs -- and an
    assertion guards the ``< 2**53`` exactness invariant.
    """
    a = np.asarray(a, dtype=object)
    b = np.asarray(b, dtype=object)
    k_dim = a.shape[1]
    if b.shape[0] != k_dim:
        raise ValueError(f"inner dims mismatch: {a.shape} @ {b.shape}")
    wordsize = max(int(modulus).bit_length(), 1)
    if plan is None:
        plan = plan_fp64_split(wordsize, wordsize, k_dim)
    bound = ((1 << plan.a_bits) - 1) * ((1 << plan.b_bits) - 1) * k_dim
    if bound >= 1 << FP64_PRECISION_BITS:
        raise PrecisionOverflowError(
            f"plan {plan} cannot hold K={k_dim} accumulation in FP64"
        )
    a_planes = _split_matrix(a, plan.a_bits, plan.a_planes)
    b_planes = _split_matrix(b, plan.b_bits, plan.b_planes)
    acc = np.zeros((a.shape[0], b.shape[1]), dtype=object)
    for i, a_plane in enumerate(a_planes):
        a_f = a_plane.astype(np.float64)
        for j, b_plane in enumerate(b_planes):
            partial = a_f @ b_plane.astype(np.float64)
            if partial.size and partial.max() >= float(1 << FP64_PRECISION_BITS):
                raise PrecisionOverflowError("FP64 plane product overflowed 2**53")
            weight = 1 << (i * plan.a_bits + j * plan.b_bits)
            # The merge (weight-and-add, modular reduction) runs on CUDA cores
            # in Neo; here it is exact integer arithmetic.
            acc = (acc + partial.astype(np.int64).astype(object) * weight) % modulus
    return modarith.asarray_mod(acc, modulus)


def int8_gemm_mod(
    a: np.ndarray, b: np.ndarray, modulus: int, plan: Optional[SplitPlan] = None
) -> np.ndarray:
    """Exact modular GEMM through INT8 plane products (TensorFHE's scheme).

    Emulates the INT8 tensor-core path: 8-bit planes of both operands,
    int32 accumulation (overflow-checked), cross-product recombination.
    """
    a = np.asarray(a, dtype=object)
    b = np.asarray(b, dtype=object)
    k_dim = a.shape[1]
    if b.shape[0] != k_dim:
        raise ValueError(f"inner dims mismatch: {a.shape} @ {b.shape}")
    wordsize = max(int(modulus).bit_length(), 1)
    if plan is None:
        plan = plan_int8_split(wordsize, wordsize)
    if 255 * 255 * k_dim >= 1 << INT8_ACCUMULATOR_BITS:
        raise PrecisionOverflowError(
            f"K={k_dim} would overflow the int32 accumulator of the INT8 path"
        )
    a_planes = _split_matrix(a, plan.a_bits, plan.a_planes)
    b_planes = _split_matrix(b, plan.b_bits, plan.b_planes)
    acc = np.zeros((a.shape[0], b.shape[1]), dtype=object)
    for i, a_plane in enumerate(a_planes):
        a_i = a_plane.astype(np.int64)
        for j, b_plane in enumerate(b_planes):
            partial = a_i @ b_plane.astype(np.int64)
            if partial.size and partial.max() >= 1 << INT8_ACCUMULATOR_BITS:
                raise PrecisionOverflowError("INT8 accumulation overflowed int32")
            weight = 1 << ((i + j) * 8)
            acc = (acc + partial.astype(object) * weight) % modulus
    return modarith.asarray_mod(acc, modulus)


def reference_gemm_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Ground-truth modular GEMM (exact integer arithmetic)."""
    return modarith.matmul_mod(
        modarith.asarray_mod(a, modulus), modarith.asarray_mod(b, modulus), modulus
    )


def make_tcu_gemm(modulus: int, plan: Optional[SplitPlan] = None):
    """A ``gemm(a, b, q)``-shaped hook running on the FP64 TCU emulation.

    Suitable for injection into :func:`repro.math.ntt.multi_step_ntt`, which
    is exactly how Neo's radix-16 NTT runs its butterflies on tensor cores.
    """

    def gemm(a, b, q):
        if q != modulus:
            raise ValueError("gemm hook built for a different modulus")
        return fp64_gemm_mod(a, b, q, plan=plan)

    return gemm
