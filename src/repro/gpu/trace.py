"""Execution traces: sequences of kernel costs with stream-overlap timing.

Neo partitions work across CUDA streams so tensor-core and CUDA-core phases
of different batches overlap (Section 4.6).  The trace model exposes both
the serial time (one stream, kernels back to back) and the overlapped time
(the per-resource lower bound that perfect multi-stream scheduling
approaches, never beating any single resource's total demand).
"""

from __future__ import annotations

import dataclasses
import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from .device import DeviceSpec
from .kernels import KernelCost


@dataclass(eq=False)
class ExecutionTrace:
    """An ordered list of kernel executions.

    Traces start out mutable (builders ``add``/``extend`` them) and can be
    ``frozen()`` once complete: a frozen trace stores its events as a tuple,
    so it is safely shareable from a cache -- attempts to ``add`` to it
    raise, and it is hashable.  Equality is by event sequence, so a frozen
    trace compares equal to the mutable trace it was built from.
    """

    events: Sequence[KernelCost] = field(default_factory=list)

    def add(self, cost: KernelCost) -> "ExecutionTrace":
        self.events.append(cost)
        return self

    def extend(self, costs: Iterable[KernelCost]) -> "ExecutionTrace":
        self.events.extend(costs)
        return self

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ExecutionTrace):
            return NotImplemented
        return tuple(self.events) == tuple(other.events)

    def __hash__(self) -> int:
        return hash(tuple(self.events))

    # -- immutability -------------------------------------------------------------

    @property
    def is_frozen(self) -> bool:
        return isinstance(self.events, tuple)

    def frozen(self) -> "ExecutionTrace":
        """This trace with an immutable event sequence (self if already so)."""
        if self.is_frozen:
            return self
        return ExecutionTrace(events=tuple(self.events))

    # -- timing -----------------------------------------------------------------

    def serial_time_s(self, device: DeviceSpec) -> float:
        """Single-stream execution: kernels run strictly back to back."""
        return sum(event.time_s(device) for event in self.events)

    def overlapped_time_s(self, device: DeviceSpec, streams: int = 8) -> float:
        """Multi-stream execution time.

        Model: with ``streams > 1``, work on different components (CUDA
        cores, FP64 TCU, INT8 TCU, memory) proceeds concurrently across
        streams, so the makespan approaches the busiest resource's total
        demand; launch overhead is amortised across streams.  The result
        is clamped to never beat ``serial / streams`` (finite parallelism)
        and never exceed the serial time.
        """
        if streams <= 1:
            return self.serial_time_s(device)
        cuda = sum(
            e.cuda_flops / device.cuda_fp64_flops for e in self.events if e.cuda_flops
        )
        tcu = 0.0
        if device.tcu_fp64_flops:
            tcu += sum(
                e.tcu_fp64_flops / device.tcu_fp64_flops
                for e in self.events
                if e.tcu_fp64_flops
            )
        elif any(e.tcu_fp64_flops for e in self.events):
            # Same infeasibility signal compute_time_s raises on the
            # serial path (autotuners catch it to prune the config).
            raise ValueError(f"{device.name} has no FP64 tensor cores")
        if device.tcu_int8_ops:
            tcu += sum(
                e.tcu_int8_ops / device.tcu_int8_ops
                for e in self.events
                if e.tcu_int8_ops
            )
        elif any(e.tcu_int8_ops for e in self.events):
            raise ValueError(f"{device.name} has no INT8 tensor cores")
        if device.memory_model == "hier":
            memory = sum(e.memory_time_s(device) for e in self.events)
            launches = sum(e.effective_launches(device) for e in self.events)
        else:
            # Flat pricing inlined per event (bit-identical to
            # KernelCost.memory_time_s) -- this sum is warm-path hot.
            bandwidth = device.memory_bytes_per_s
            memory = sum(
                (e.bytes_read + e.bytes_written) / bandwidth
                for e in self.events
            )
            launches = sum(e.launches for e in self.events)
        overhead = launches * device.kernel_launch_us * 1e-6 / streams
        bound = max(cuda, tcu, memory) + overhead
        serial = self.serial_time_s(device)
        return min(serial, max(bound, serial / streams))

    # -- serialisation ------------------------------------------------------------

    def to_jsonable(self) -> List[Dict]:
        """The event list as JSON-serialisable dicts (stable field order)."""
        return [dataclasses.asdict(event) for event in self.events]

    def canonical_json(self) -> str:
        """A deterministic JSON encoding of the trace.

        Equal traces produce byte-identical strings (floats round-trip
        through ``repr``), which is what the golden-trace fixtures diff.
        """
        return json.dumps(self.to_jsonable(), sort_keys=True, indent=2)

    @staticmethod
    def from_jsonable(events: Iterable[Dict]) -> "ExecutionTrace":
        """Rebuild a frozen trace from :meth:`to_jsonable` output.

        Accepts both pre-hierarchy payloads (no ``traffic`` key) and the
        current format, where ``traffic`` is a nested dict or ``None``.
        """
        from .kernels import KernelCost
        from .memory_model import TrafficProfile

        rebuilt = []
        for event in events:
            event = dict(event)
            traffic = event.get("traffic")
            if isinstance(traffic, dict):
                event["traffic"] = TrafficProfile(**traffic)
            rebuilt.append(KernelCost(**event))
        return ExecutionTrace(rebuilt).frozen()

    # -- accounting ---------------------------------------------------------------

    def breakdown_s(self, device: DeviceSpec) -> Dict[str, float]:
        """Serial time aggregated by kernel name."""
        table: Dict[str, float] = defaultdict(float)
        for event in self.events:
            table[event.name] += event.time_s(device)
        return dict(table)

    def total_bytes(self) -> float:
        """Total global-memory traffic of the trace."""
        return sum(e.bytes_read + e.bytes_written for e in self.events)

    def bytes_by_kernel(self) -> Dict[str, float]:
        """Global-memory traffic aggregated by kernel name."""
        table: Dict[str, float] = defaultdict(float)
        for event in self.events:
            table[event.name] += event.bytes_read + event.bytes_written
        return dict(table)

    def merged(self, other: "ExecutionTrace") -> "ExecutionTrace":
        return ExecutionTrace(events=list(self.events) + list(other.events))

    def scaled(self, factor: float) -> "ExecutionTrace":
        """The trace repeated `factor` times (for per-iteration -> app time)."""
        return ExecutionTrace(events=[e.scaled(factor) for e in self.events])
