"""Fig. 3: INT8 vs FP64 tensor-core GEMM at wide word sizes.

The paper's motivating micro-benchmark: a ``2**19 x 16 x 16`` modular GEMM
at WordSize 36 and 48, decomposed for the INT8 components (Booth complexity
25 / 36) versus the FP64 components (3 / 4 plane products).  We reproduce
the *three-step* breakdown the figure shows -- split, matrix multiplication,
merge -- from the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..gpu.device import A100, DeviceSpec
from ..gpu.fragments import FP64_FRAGMENT, best_int8_fragment, fragment_ops
from ..gpu.kernels import ELEMENTWISE_FLOPS
from ..gpu.tensorcore import plan_fp64_split, plan_int8_split

#: The GEMM dimensions of Fig. 3.
FIG3_M, FIG3_N, FIG3_K = 2**19, 16, 16


@dataclass(frozen=True)
class GemmStepTimes:
    """Split / matmul / merge times (seconds) for one decomposition."""

    split_s: float
    matmul_s: float
    merge_s: float
    plane_products: int

    @property
    def total_s(self) -> float:
        return self.split_s + self.matmul_s + self.merge_s


def fp64_step_times(
    wordsize: int,
    m: int = FIG3_M,
    n: int = FIG3_N,
    k: int = FIG3_K,
    device: DeviceSpec = A100,
) -> GemmStepTimes:
    """FP64-component execution of the Fig. 3 GEMM."""
    plan = plan_fp64_split(wordsize, wordsize, k)
    split_elems = plan.a_planes * m * k + plan.b_planes * k * n
    merge_elems = plan.products * m * n + m * n
    frags = fragment_ops(m, n, k, FP64_FRAGMENT)
    matmul_flops = frags * FP64_FRAGMENT.flops * plan.products
    return GemmStepTimes(
        split_s=split_elems * ELEMENTWISE_FLOPS / device.cuda_fp64_flops,
        matmul_s=matmul_flops / device.tcu_fp64_flops,
        merge_s=merge_elems * ELEMENTWISE_FLOPS / device.cuda_fp64_flops,
        plane_products=plan.products,
    )


def int8_step_times(
    wordsize: int,
    m: int = FIG3_M,
    n: int = FIG3_N,
    k: int = FIG3_K,
    device: DeviceSpec = A100,
) -> GemmStepTimes:
    """INT8-component execution of the Fig. 3 GEMM (Booth decomposition)."""
    plan = plan_int8_split(wordsize, wordsize)
    shape = best_int8_fragment(m, n, k)
    split_elems = plan.a_planes * m * k + plan.b_planes * k * n
    merge_elems = plan.products * m * n + m * n
    frags = fragment_ops(m, n, k, shape)
    matmul_ops = frags * shape.flops * plan.products
    return GemmStepTimes(
        split_s=split_elems * ELEMENTWISE_FLOPS / device.cuda_fp64_flops,
        matmul_s=matmul_ops / device.tcu_int8_ops,
        merge_s=merge_elems * ELEMENTWISE_FLOPS / device.cuda_fp64_flops,
        plane_products=plan.products,
    )


def fig3_comparison(device: DeviceSpec = A100) -> Dict[str, GemmStepTimes]:
    """All four Fig. 3 bars: {'int8_ws36', 'fp64_ws36', 'int8_ws48', 'fp64_ws48'}."""
    return {
        "int8_ws36": int8_step_times(36, device=device),
        "fp64_ws36": fp64_step_times(36, device=device),
        "int8_ws48": int8_step_times(48, device=device),
        "fp64_ws48": fp64_step_times(48, device=device),
    }


def fp64_speedup(wordsize: int, device: DeviceSpec = A100) -> float:
    """FP64-over-INT8 total-time speedup (paper: 1.65x at 36, 1.74x at 48)."""
    return (
        int8_step_times(wordsize, device=device).total_s
        / fp64_step_times(wordsize, device=device).total_s
    )
