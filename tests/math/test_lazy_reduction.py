"""Property tests: lazy-reduction GEMM kernels at boundary moduli.

Neo's Algorithm 4 accumulates 128-bit products and reduces once per
accumulator instead of once per term.  Correctness hinges on the slack
bound: at most ``lazy_max_terms`` products may be folded before the high
words could overflow 64 bits.  These tests pin that bound and the
bit-exactness of :meth:`~repro.math.modstack.ModulusStack.lazy_mul_sum`
against eager per-step reduction, at the nastiest moduli:

* just below ``2**62`` (the Barrett ceiling -- almost no slack, so the
  chunked accumulation actually splits), and
* just above ``2**31`` (the Barrett floor -- maximal slack).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.math import modarith
from repro.math.modstack import ModulusStack
from repro.math.primes import ntt_primes
from repro.math.rns import RnsBasis, bconv_weights

# Odd moduli hugging the two Barrett-range boundaries.
high_moduli = st.integers(min_value=2**62 - 2**20, max_value=2**62 - 1).map(
    lambda q: q | 1
)
low_moduli = st.integers(min_value=2**31 + 1, max_value=2**31 + 2**20).map(
    lambda q: q | 1
)
boundary_moduli = st.one_of(high_moduli, low_moduli)


def _random_operands(q, n_terms, width, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, q, size=(n_terms, width), dtype=np.uint64)
    b = rng.integers(0, q, size=(n_terms, width), dtype=np.uint64)
    return a, b


def _eager_reference(a, b, q):
    """Fold the term axis with exact integers, reduced once per step."""
    acc = [0] * a.shape[1]
    for k in range(a.shape[0]):
        for j in range(a.shape[1]):
            acc[j] = (acc[j] + int(a[k, j]) * int(b[k, j])) % q
    return acc


@settings(max_examples=60, deadline=None)
@given(boundary_moduli, st.integers(min_value=1, max_value=40), st.integers(0, 2**32))
def test_lazy_mul_sum_matches_eager(q, n_terms, seed):
    """Lazy accumulation is bit-identical to eager per-step reduction."""
    stack = ModulusStack([q])
    assert stack.native
    a, b = _random_operands(q, n_terms, width=4, seed=seed)
    got = stack.lazy_mul_sum(a[None], b[None], axis=1)
    assert got.dtype == np.uint64
    assert list(got[0].astype(object)) == _eager_reference(a, b, q)


@settings(max_examples=40, deadline=None)
@given(high_moduli, st.integers(0, 2**32))
def test_chunked_accumulation_at_barrett_ceiling(q, seed):
    """Near ``2**62`` the slack forces chunking; the result stays exact."""
    stack = ModulusStack([q])
    chunk = stack.lazy_max_terms()
    # (q-1)^2 has a ~2**60 high word, so only a handful of terms fit.
    assert chunk < 32
    n_terms = 3 * chunk + 1  # guarantees several chunk boundaries
    a, b = _random_operands(q, n_terms, width=2, seed=seed)
    got = stack.lazy_mul_sum(a[None], b[None], axis=1)
    assert list(got[0].astype(object)) == _eager_reference(a, b, q)


@settings(max_examples=60, deadline=None)
@given(boundary_moduli)
def test_slack_bound_is_tight_and_safe(q):
    """``lazy_max_terms`` is the largest K whose high words cannot overflow."""
    stack = ModulusStack([q])
    terms = stack.lazy_max_terms()
    hi_max = ((q - 1) * (q - 1)) >> 64
    # Safe: K terms of worst-case high word plus K low-word carries fit u64.
    assert terms * (hi_max + 1) <= 2**64 - 1
    # Tight: one more term could overflow the high-word accumulator.
    assert (terms + 1) * (hi_max + 1) > 2**64 - 1
    assert stack.lazy_slack_bits() == terms.bit_length() - 1
    assert terms >= 1


@settings(max_examples=20, deadline=None)
@given(boundary_moduli)
def test_worst_case_operands_do_not_overflow(q):
    """A full chunk of all-maximal products still reduces exactly."""
    stack = ModulusStack([q])
    chunk = stack.lazy_max_terms()
    n_terms = min(2 * chunk, 64)  # cross one boundary, keep the test fast
    a = np.full((1, n_terms, 2), q - 1, dtype=np.uint64)
    got = stack.lazy_mul_sum(a, a, axis=1)
    want = (n_terms * (q - 1) * (q - 1)) % q
    assert all(int(v) == want for v in got[0])


#: Real NTT primes hugging the Barrett boundaries (prime, hence coprime).
_CEILING_PRIMES = tuple(ntt_primes(62, 64, 2))
_FLOOR_PRIMES = tuple(ntt_primes(32, 64, 2))


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from(
        [
            _CEILING_PRIMES,
            _FLOOR_PRIMES,
            (_CEILING_PRIMES[0], _FLOOR_PRIMES[0]),
        ]
    ),
    st.integers(0, 2**32),
)
def test_bconv_matmul_matches_object_gemm(moduli, seed):
    """The padded conversion GEMM equals the exact object-dtype matmul."""
    rng = np.random.default_rng(seed)
    from_basis = RnsBasis(ntt_primes(40, 64, 2))
    to_basis = RnsBasis(moduli)
    stack = ModulusStack(to_basis.moduli)
    scaled = np.stack(
        [
            rng.integers(0, int(f), size=3, dtype=np.uint64)
            for f in from_basis.moduli
        ]
    )
    weights = bconv_weights(from_basis, to_basis)
    got = stack.bconv_matmul(
        scaled, weights, operand_bound=max(from_basis.moduli)
    )
    for j, p in enumerate(to_basis.moduli):
        want = [
            sum(
                int(scaled[i, c]) * int(weights[j, i])
                for i in range(len(from_basis))
            )
            % p
            for c in range(scaled.shape[1])
        ]
        assert list(got[j].astype(object)) == want


def test_operand_bound_shrinks_chunk():
    """A larger declared operand bound must shrink the safe chunk size."""
    q = 2**40 + 15
    stack = ModulusStack([q])
    assert stack.lazy_max_terms(2**61) <= stack.lazy_max_terms()
    # Bounds below q_max are ignored (q_max dominates the product).
    assert stack.lazy_max_terms(3) == stack.lazy_max_terms()


def test_lazy_mul_sum_object_path_matches_native():
    """The object fallback computes the same residues as the native kernel."""
    q = 2**61 - 1  # Mersenne, odd, inside the Barrett range [2**31, 2**62)
    rng = np.random.default_rng(5)
    a = rng.integers(0, q, size=(1, 7, 3), dtype=np.uint64)
    b = rng.integers(0, q, size=(1, 7, 3), dtype=np.uint64)
    native = ModulusStack([q])
    assert native.native
    got_native = native.lazy_mul_sum(a, b, axis=1)
    with modarith.object_backend():
        oracle = ModulusStack([q])
        assert not oracle.native
        got_object = oracle.lazy_mul_sum(
            a.astype(object), b.astype(object), axis=1
        )
    assert got_object.dtype == object
    assert np.array_equal(got_native.astype(object), got_object)
