"""Homomorphic linear transforms via the diagonal (BSGS) method.

CoeffToSlot / SlotToCoeff in bootstrapping, and any slot-space matrix
multiplication, reduce to::

    (M z)_i = sum_d  diag_d(M)_i * z_{i+d}

i.e. a sum of rotated ciphertexts weighted by plaintext diagonals.  The
baby-step/giant-step arrangement cuts the rotation count from ``#diags``
to roughly ``2 * sqrt(#diags)``:

    M z = sum_g rot( sum_b  rot^{-g*n1}(diag_{g*n1+b}) * rot^b(z), g*n1 )

This module turns a complex ``slots x slots`` matrix into encoded diagonal
plaintexts and applies it to a ciphertext with an :class:`Evaluator`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from .ciphertext import Ciphertext
from .encoder import CkksEncoder
from .evaluator import Evaluator
from .params import CkksParameters


def matrix_diagonals(matrix: np.ndarray, tol: float = 0.0) -> Dict[int, np.ndarray]:
    """Extract the (generalised) diagonals of a square matrix.

    ``diag_d[i] = M[i, (i + d) mod n]``; diagonals whose max magnitude is
    at or below `tol` are dropped (sparse transforms like the DFT factors
    have few nonzero diagonals).
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    diagonals = {}
    for d in range(n):
        diag = np.array([matrix[i, (i + d) % n] for i in range(n)])
        if np.abs(diag).max() > tol:
            diagonals[d] = diag
    return diagonals


class LinearTransform:
    """A slots-space matrix, preprocessed for homomorphic application.

    Args:
        encoder: the CKKS encoder (defines slot count and scales).
        matrix: ``slots x slots`` complex matrix.
        bsgs_ratio: giant-step size is ``~sqrt(#diags * bsgs_ratio)``.

    Consumes one multiplicative level per application (a single Rescale).
    """

    def __init__(
        self,
        encoder: CkksEncoder,
        matrix: np.ndarray,
        bsgs_ratio: float = 1.0,
    ):
        self.encoder = encoder
        self.slots = encoder.slots
        diagonals = matrix_diagonals(matrix)
        if not diagonals:
            raise ValueError("matrix has no nonzero diagonals")
        self.diagonal_indices = sorted(diagonals)
        self.baby = max(1, round(math.sqrt(len(diagonals) * bsgs_ratio)))
        #: plan[g][b] = plaintext diagonal for rotation g*baby + b (pre-rotated).
        self._plan: Dict[int, Dict[int, np.ndarray]] = {}
        for d, diag in diagonals.items():
            g, b = divmod(d, self.baby)
            # Pre-rotate the diagonal so the giant-step rotation commutes.
            self._plan.setdefault(g, {})[b] = np.roll(diag, g * self.baby)

    def required_rotations(self) -> List[int]:
        """Slot rotations whose Galois keys must exist before `apply`."""
        steps = {b for plan in self._plan.values() for b in plan if b}
        steps |= {g * self.baby for g in self._plan if g}
        return sorted(steps)

    def apply(self, evaluator: Evaluator, ct: Ciphertext) -> Ciphertext:
        """Homomorphically compute ``M z`` (one level consumed)."""
        level = ct.level
        baby_rotations: Dict[int, Ciphertext] = {0: ct}
        for plan in self._plan.values():
            for b in plan:
                if b not in baby_rotations:
                    baby_rotations[b] = evaluator.rotate(ct, b)
        outer: Optional[Ciphertext] = None
        for g, plan in sorted(self._plan.items()):
            inner: Optional[Ciphertext] = None
            for b, diag in sorted(plan.items()):
                pt = self.encoder.encode(diag, level=level)
                term = evaluator.multiply_plain(baby_rotations[b], pt)
                inner = term if inner is None else evaluator.add(inner, term)
            if g:
                inner = evaluator.rotate(inner, g * self.baby)
            outer = inner if outer is None else evaluator.add(outer, inner)
        return evaluator.rescale(outer)


def identity_transform(encoder: CkksEncoder) -> LinearTransform:
    """The identity matrix as a transform (useful for tests)."""
    return LinearTransform(encoder, np.eye(encoder.slots, dtype=np.complex128))


def rotation_keys_for(
    transforms: List[LinearTransform],
) -> List[int]:
    """Union of rotation steps a set of transforms requires."""
    steps = set()
    for transform in transforms:
        steps.update(transform.required_rotations())
    return sorted(steps)
