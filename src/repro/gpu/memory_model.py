"""Reuse-distance memory-hierarchy traffic model (L2 / shared-memory tiers).

The flat roofline in :mod:`repro.gpu.kernels` prices every byte a kernel
declares at HBM bandwidth times a fixed ``memory_efficiency``.  That hides
the effect Theodosian and Cheddar (PAPERS.md) identify as decisive for FHE
on GPUs: whether a kernel's *redundant* traffic -- inter-stage NTT
intermediates, BConv's per-output re-reads, the evaluation key re-streamed
per batch tile -- is served by shared memory, by L2, or spills to DRAM.

This module adds that second axis.  Each :class:`~repro.gpu.kernels.KernelCost`
may carry a :class:`TrafficProfile` describing its *reuse* traffic (logical
bytes beyond the compulsory reads/writes already recorded on the cost) and
the footprints that decide where that reuse lands:

* ``smem_tile_bytes`` -- the per-CTA tile.  If it fits the device's shared
  memory, the reuse is captured on-chip and costs nothing.
* ``working_set_bytes`` -- what must stay resident between re-references.
  If it fits the (fractional) L2, the reuse is served at L2 bandwidth;
  otherwise it spills and the reuse bytes are charged to DRAM on top of
  the compulsory traffic.

Pricing is deliberately *monotone versus the flat model*: the hierarchical
time is never below ``compulsory_bytes / hbm_bandwidth`` -- the hierarchy
can only add penalties the flat model hid, never invent bandwidth.  That is
the regression gate ``benchmarks/test_ext_autotune.py`` enforces.

Profiles are device-independent (tile shapes and operand footprints only),
so cached traces stay valid across devices; the L2/HBM split happens here,
at timing time, for whatever device asks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from .device import DeviceSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from .kernels import KernelCost
    from .trace import ExecutionTrace

#: Fraction of L2 a kernel's working set can realistically hold resident
#: (the rest serves concurrent streams, instruction traffic, and the
#: replacement policy's imprecision).
L2_RESIDENT_FRACTION = 0.8

#: Reuse placements :func:`classify_traffic` can report.
PLACEMENTS = ("stream", "smem", "l2", "spill")


@dataclass(frozen=True)
class TrafficProfile:
    """Device-independent reuse description of one kernel (or fused group).

    ``reuse_bytes`` is the *additional* logical traffic beyond the
    compulsory ``bytes_read + bytes_written`` already on the kernel cost --
    what a cache-less machine would pay to DRAM.  The footprints decide
    which tier absorbs it; ``tile_launches`` are the extra kernel launches
    the tiled/staged execution needs beyond the cost's own ``launches``.
    """

    reuse_bytes: float = 0.0
    working_set_bytes: float = 0.0
    smem_tile_bytes: float = 0.0
    tile_launches: float = 0.0

    def scaled(self, factor: float) -> "TrafficProfile":
        """Running the kernel `factor` times: traffic and launches scale,
        per-invocation footprints do not."""
        # Direct construction: this sits on the per-event hot path of
        # schedule assembly, where dataclasses.replace is measurably slow.
        return TrafficProfile(
            reuse_bytes=self.reuse_bytes * factor,
            working_set_bytes=self.working_set_bytes,
            smem_tile_bytes=self.smem_tile_bytes,
            tile_launches=self.tile_launches * factor,
        )

    def merged(self, other: Optional["TrafficProfile"]) -> "TrafficProfile":
        """Back-to-back execution: traffic adds, footprints take the max
        (the union working set is at least the larger one)."""
        if other is None:
            return self
        return TrafficProfile(
            reuse_bytes=self.reuse_bytes + other.reuse_bytes,
            working_set_bytes=max(self.working_set_bytes, other.working_set_bytes),
            smem_tile_bytes=max(self.smem_tile_bytes, other.smem_tile_bytes),
            tile_launches=self.tile_launches + other.tile_launches,
        )


@dataclass(frozen=True)
class TrafficSplit:
    """Where one kernel's bytes land in the hierarchy."""

    #: Bytes that cross the HBM interface (compulsory + spilled reuse).
    hbm_bytes: float
    #: Bytes that cross L2 (everything that is not shared-memory-resident).
    l2_bytes: float
    #: Reuse bytes absorbed on-chip (shared memory) or by L2.
    captured_bytes: float
    #: One of :data:`PLACEMENTS`.
    placement: str


def classify_traffic(
    compulsory_bytes: float,
    traffic: Optional[TrafficProfile],
    device: DeviceSpec,
) -> TrafficSplit:
    """Split a kernel's bytes into HBM and L2 traffic for `device`.

    * No profile / zero reuse: a streaming kernel -- every compulsory byte
      crosses both DRAM and L2.
    * Tile fits shared memory: the reuse never leaves the SM.
    * Working set fits ``L2_RESIDENT_FRACTION`` of L2: reuse served by L2.
    * Otherwise the reuse spills: charged to DRAM *and* L2.
    """
    if traffic is None or traffic.reuse_bytes <= 0.0:
        return TrafficSplit(compulsory_bytes, compulsory_bytes, 0.0, "stream")
    reuse = traffic.reuse_bytes
    if (
        0.0 < traffic.smem_tile_bytes <= device.smem_bytes_per_sm
    ):
        return TrafficSplit(compulsory_bytes, compulsory_bytes, reuse, "smem")
    if (
        device.l2_capacity_bytes > 0
        and traffic.working_set_bytes
        <= device.l2_capacity_bytes * L2_RESIDENT_FRACTION
    ):
        return TrafficSplit(
            compulsory_bytes, compulsory_bytes + reuse, reuse, "l2"
        )
    return TrafficSplit(
        compulsory_bytes + reuse, compulsory_bytes + reuse, 0.0, "spill"
    )


def hier_memory_time_s(
    compulsory_bytes: float,
    traffic: Optional[TrafficProfile],
    device: DeviceSpec,
) -> float:
    """Memory time under the hierarchy model, seconds.

    ``max`` of the DRAM and L2 interface times: the slower tier bounds a
    pipelined kernel.  Never below the flat model's
    ``compulsory / hbm_bandwidth`` (the split never shrinks HBM traffic).
    """
    split = classify_traffic(compulsory_bytes, traffic, device)
    time = split.hbm_bytes / device.memory_bytes_per_s
    if device.l2_bytes_per_s > 0:
        time = max(time, split.l2_bytes / device.l2_bytes_per_s)
    return time


def extra_launches(traffic: Optional[TrafficProfile]) -> float:
    """Tiled-execution launches beyond the kernel cost's own count."""
    return traffic.tile_launches if traffic is not None else 0.0


# ---------------------------------------------------------------------------
# Reuse-profile builders for the op-plan kernel families
# ---------------------------------------------------------------------------


def ntt_traffic(
    elements: float,
    word_bytes: int,
    stages: int,
    degree: int,
    polys: int,
    tile_polys: Optional[int] = None,
) -> TrafficProfile:
    """Profile of a staged (four-step / radix-16 / multi-pass butterfly) NTT.

    Every stage boundary round-trips the full intermediate once
    (``2 * elements`` per extra stage).  Chunking ``tile_polys`` polynomials
    through all stages shrinks the inter-stage working set to the chunk --
    the knob the autotuner searches -- at the price of
    ``stages * ceil(polys / tile)`` launches.  A transform whose double
    buffer fits one CTA's shared memory (small ``degree``) keeps the whole
    dance on-chip.
    """
    if stages <= 1:
        return TrafficProfile()
    tile = polys if tile_polys is None else max(1, min(tile_polys, polys))
    chunks = -(-polys // tile) if tile else 1
    return TrafficProfile(
        reuse_bytes=2.0 * elements * word_bytes * (stages - 1),
        working_set_bytes=2.0 * tile * degree * word_bytes,
        smem_tile_bytes=2.0 * degree * word_bytes,
        tile_launches=max(0.0, float(stages * chunks - 1)),
    )


def bconv_traffic(
    elements_in: float,
    logical_rereads: float,
    counted_rereads: float,
    word_bytes: int,
    batch: int,
    batch_tile: Optional[int] = None,
    matrix_bytes: float = 0.0,
) -> TrafficProfile:
    """Profile of a BConv.

    Element-wise style (Algorithm 1): the uncapped tail of the per-output
    re-reads (the flat model already counts ``counted_rereads`` of them at
    DRAM) with the *input* as the working set -- tiling the batch shrinks
    it.  GEMM style passes ``logical_rereads == counted_rereads`` and a
    constant-matrix footprint that re-streams once per batch tile.
    """
    tile = batch if batch_tile is None else max(1, min(batch_tile, batch))
    chunks = -(-batch // tile)
    reuse = max(0.0, logical_rereads - counted_rereads) * elements_in * word_bytes
    reuse += matrix_bytes * max(0, chunks - 1)
    if reuse <= 0.0:
        return TrafficProfile(tile_launches=float(max(0, chunks - 1)))
    ws = (elements_in / max(batch, 1)) * tile * word_bytes
    if matrix_bytes:
        ws = max(ws, matrix_bytes)
    return TrafficProfile(
        reuse_bytes=reuse,
        working_set_bytes=ws,
        smem_tile_bytes=matrix_bytes,
        tile_launches=float(max(0, chunks - 1)),
    )


def ip_traffic(
    evk_bytes: float,
    limb_bytes: float,
    logical_rereads: float,
    counted_rereads: float,
    batch: int,
    batch_tile: Optional[int] = None,
) -> TrafficProfile:
    """Profile of an inner product.

    The evaluation key is shared by every ciphertext of the batch: tiling
    the batch re-streams it once per tile, and the key is the working set
    that must stay resident for those re-reads to hit L2 -- large keys
    punish small tiles, the counter-pressure to the NTT's preference.
    """
    tile = batch if batch_tile is None else max(1, min(batch_tile, batch))
    chunks = -(-batch // tile)
    reuse = max(0.0, logical_rereads - counted_rereads) * limb_bytes
    reuse += evk_bytes * max(0, chunks - 1)
    if reuse <= 0.0:
        return TrafficProfile(tile_launches=float(max(0, chunks - 1)))
    ws = evk_bytes if chunks > 1 else limb_bytes
    return TrafficProfile(
        reuse_bytes=reuse,
        working_set_bytes=ws,
        tile_launches=float(max(0, chunks - 1)),
    )


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def kernel_traffic_split(cost: "KernelCost", device: DeviceSpec) -> TrafficSplit:
    """The HBM/L2 split of one kernel cost on `device`."""
    return classify_traffic(
        cost.bytes_read + cost.bytes_written, cost.traffic, device
    )


def trace_traffic_report(
    trace: "ExecutionTrace", device: DeviceSpec
) -> Dict[str, Dict[str, float]]:
    """Per-kernel-name HBM/L2/captured byte totals of a trace on `device`."""
    table: Dict[str, Dict[str, float]] = {}
    for event in trace.events:
        split = kernel_traffic_split(event, device)
        row = table.setdefault(
            event.name, {"hbm_bytes": 0.0, "l2_bytes": 0.0, "captured_bytes": 0.0}
        )
        row["hbm_bytes"] += split.hbm_bytes
        row["l2_bytes"] += split.l2_bytes
        row["captured_bytes"] += split.captured_bytes
    return table
