"""Tests for NTT-friendly prime generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.math import primes


def test_is_prime_small():
    known = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31}
    for n in range(32):
        assert primes.is_prime(n) == (n in known)


def test_is_prime_carmichael():
    # Carmichael numbers fool Fermat but not Miller-Rabin.
    for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
        assert not primes.is_prime(carmichael)


def test_is_prime_large_known():
    assert primes.is_prime((1 << 61) - 1)  # Mersenne prime
    assert not primes.is_prime((1 << 61) - 3)


@pytest.mark.parametrize("bits,degree", [(20, 256), (28, 1024), (36, 64), (48, 64), (60, 64)])
def test_ntt_primes_properties(bits, degree):
    got = primes.ntt_primes(bits, degree, count=4)
    assert len(set(got)) == 4
    for p in got:
        assert p.bit_length() == bits
        assert p % (2 * degree) == 1
        assert primes.is_prime(p)


def test_ntt_primes_ascending_descending_disjoint_start():
    down = primes.ntt_primes(28, 64, 2, descending=True)
    up = primes.ntt_primes(28, 64, 2, descending=False)
    assert down[0] > up[0]


def test_ntt_primes_too_small_bits():
    with pytest.raises(ValueError):
        primes.ntt_primes(8, 1024, 1)


def test_disjoint_prime_chains():
    chains = primes.disjoint_prime_chains([30, 30, 31], 128, [3, 3, 2])
    flat = [p for chain in chains for p in chain]
    assert len(flat) == len(set(flat)) == 8
    for chain, bits in zip(chains, [30, 30, 31]):
        for p in chain:
            assert p.bit_length() == bits and p % 256 == 1


def test_disjoint_chain_length_mismatch():
    with pytest.raises(ValueError):
        primes.disjoint_prime_chains([30], 64, [1, 1])


def test_primitive_root():
    g = primes.primitive_root(17)
    seen = {pow(g, k, 17) for k in range(16)}
    assert seen == set(range(1, 17))


def test_root_of_unity_order():
    p = primes.ntt_primes(28, 256, 1)[0]
    order = 512
    w = primes.root_of_unity(order, p)
    assert pow(w, order, p) == 1
    assert pow(w, order // 2, p) == p - 1


def test_root_of_unity_bad_order():
    with pytest.raises(ValueError):
        primes.root_of_unity(7, 17)  # 7 does not divide 16


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=3, max_value=10**6))
def test_property_is_prime_matches_trial_division(n):
    def trial(n):
        if n < 2:
            return False
        d = 2
        while d * d <= n:
            if n % d == 0:
                return False
            d += 1
        return True

    assert primes.is_prime(n) == trial(n)
