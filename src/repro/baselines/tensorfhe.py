"""TensorFHE (Fan et al., HPCA'23) performance model.

TensorFHE is the paper's principal baseline: the first GPU CKKS system to
use tensor cores, but only for the NTT, only through the INT8 components
(Booth-split into 8-bit planes), and with element-wise BConv/IP kernels.
The paper re-implements it with Double Rescale integrated (Table 5 note),
which is what the Set-A/B/C rows of our reproduction model too.
"""

from __future__ import annotations

from typing import Optional

from ..ckks.params import ParameterSet
from ..core.neo_context import NeoContext
from ..core.pipeline import TENSORFHE_CONFIG
from ..gpu.device import A100, DeviceSpec


class TensorFheModel(NeoContext):
    """A :class:`NeoContext` pinned to the TensorFHE configuration.

    Evaluated at the paper's Sets A, B and C (all Hybrid key switching --
    TensorFHE has no KLSS implementation, so Set C runs with its
    ``dnum``/``WordSize`` but the Hybrid method).
    """

    def __init__(
        self,
        params: ParameterSet | str = "A",
        device: DeviceSpec = A100,
        batch: Optional[int] = None,
    ):
        super().__init__(
            params,
            device=device,
            config=TENSORFHE_CONFIG.with_overrides(keyswitch="hybrid"),
            batch=batch,
        )
