"""Metrics registry: instruments, labels, exporters, the disabled path."""

import json
import threading

import pytest

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    disable_telemetry,
    enable_telemetry,
    global_registry,
    telemetry_enabled,
)


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_inc_accumulates(self, registry):
        c = registry.counter("requests_total", "requests")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self, registry):
        c = registry.counter("x_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_labels_are_independent_series(self, registry):
        c = registry.counter("served_total", labelnames=("app",))
        c.labels(app="helr").inc(3)
        c.labels(app="resnet20").inc()
        assert c.labels(app="helr").value == 3
        assert c.labels(app="resnet20").value == 1

    def test_wrong_labelnames_raise(self, registry):
        c = registry.counter("served_total", labelnames=("app",))
        with pytest.raises(ValueError, match="takes labels"):
            c.labels(wrong="x").inc()


class TestGauge:
    def test_set_is_last_write_wins(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.set(2)
        assert g.value == 2

    def test_inc_moves_gauge(self, registry):
        g = registry.gauge("resident")
        g.inc(4)
        g.inc(-1)
        assert g.value == 3


class TestHistogram:
    def test_observe_fills_buckets_and_sum(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        value = h.series()[()]
        assert value.count == 4
        assert value.sum == pytest.approx(105.0)
        # per-bucket (non-cumulative) counts, last slot is +Inf
        assert value.counts == [1, 1, 1, 1]
        assert value.cumulative() == [1, 2, 3, 4]

    def test_boundary_value_lands_in_its_le_bucket(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.0)  # le="1.0" is inclusive (Prometheus convention)
        assert h.series()[()].counts == [1, 0, 0]

    def test_rejects_unsorted_buckets(self, registry):
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("bad", buckets=(2.0, 1.0))

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


class TestRegistry:
    def test_get_or_create_returns_same_family(self, registry):
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_conflict_raises(self, registry):
        registry.counter("a_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a_total")

    def test_label_conflict_raises(self, registry):
        registry.counter("a_total", labelnames=("app",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("a_total", labelnames=("op",))

    def test_invalid_name_rejected(self, registry):
        with pytest.raises(ValueError, match="metric name"):
            registry.counter("bad name")

    def test_reset_drops_families(self, registry):
        registry.counter("a_total").inc()
        registry.reset()
        assert registry.names() == ()
        assert registry.counter("a_total").value == 0

    def test_get_returns_live_family_or_none(self, registry):
        c = registry.counter("a_total")
        assert registry.get("a_total") is c
        registry.reset()
        assert registry.get("a_total") is None

    def test_disabled_mutations_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("a_total")
        g = registry.gauge("g")
        h = registry.histogram("h")
        c.inc()
        g.set(5)
        h.observe(1.0)
        assert c.value == 0
        assert g.value == 0
        assert h.series() == {}

    def test_thread_safety_under_contention(self, registry):
        c = registry.counter("hits_total", labelnames=("worker",))

        def hammer(worker):
            for _ in range(1000):
                c.labels(worker=str(worker)).inc()

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(c.series().values()) == 4000


class TestExporters:
    def test_snapshot_json_round_trips(self, registry):
        registry.counter("served_total", "served", labelnames=("app",)).labels(
            app="helr"
        ).inc(2)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        data = json.loads(registry.snapshot_json())
        assert data["served_total"]["type"] == "counter"
        assert data["served_total"]["series"][0] == {
            "labels": {"app": "helr"},
            "value": 2,
        }
        hist = data["lat"]["series"][0]
        assert hist["count"] == 1 and hist["buckets"] == [1.0]

    def test_prometheus_text_format(self, registry):
        registry.counter("served_total", "requests served",
                         labelnames=("app",)).labels(app="helr").inc(2)
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        text = registry.to_prometheus_text()
        assert "# HELP served_total requests served" in text
        assert "# TYPE served_total counter" in text
        assert 'served_total{app="helr"} 2' in text
        # histogram exposition: cumulative le buckets + +Inf + sum + count
        assert 'lat_bucket{le="1"} 0' in text
        assert 'lat_bucket{le="2"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 1.5" in text
        assert "lat_count 1" in text

    def test_label_values_escaped(self, registry):
        registry.gauge("g", labelnames=("k",)).labels(k='a"b\nc').set(1)
        text = registry.to_prometheus_text()
        assert 'g{k="a\\"b\\nc"} 1' in text


class TestGlobalRegistry:
    def test_enable_disable_cycle(self):
        try:
            registry = enable_telemetry()
            assert registry is global_registry()
            assert telemetry_enabled()
        finally:
            disable_telemetry()
        assert not telemetry_enabled()
