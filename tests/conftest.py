"""Suite-wide fixtures and options.

* ``--seed N`` drives the shared :func:`rng` fixture used by the
  random-circuit and serving tests; the seed in use is printed (and shown
  by pytest on failure), so any flake reproduces with
  ``pytest --seed <printed seed>``.
* ``--update-golden`` regenerates the frozen trace fixtures under
  ``tests/fixtures/`` instead of diffing against them (see
  ``tests/core/test_golden_traces.py``).
"""

import numpy as np
import pytest

DEFAULT_SEED = 2024


def pytest_addoption(parser):
    parser.addoption(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=f"seed for the shared rng fixture (default {DEFAULT_SEED})",
    )
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden-trace fixtures instead of diffing them",
    )


def pytest_report_header(config):
    return f"rng seed: {config.getoption('--seed')} (override with --seed)"


@pytest.fixture()
def seed(request):
    """The suite seed as a plain int (for APIs that take seeds directly)."""
    return request.config.getoption("--seed")


@pytest.fixture()
def rng(seed):
    """A fresh seeded generator per test; the seed prints on failure."""
    print(f"[rng fixture] seed={seed} (reproduce with: pytest --seed {seed})")
    return np.random.default_rng(seed)


@pytest.fixture()
def update_golden(request):
    return request.config.getoption("--update-golden")
