"""Fig. 14: incremental optimisation ablation on the three applications.

+KLSS, +dataflow, +ten-step NTT, +FP64 TCU -- normalised to TensorFHE.
"""

from repro.apps import HelrApp, PackBootstrap, ResNetApp
from repro.analysis.reporting import format_table
from repro.core import ABLATION_STEPS, NeoContext

APPS = (PackBootstrap(), HelrApp(), ResNetApp(20))


def _build_table():
    table = {}
    for label, config in ABLATION_STEPS:
        params = "C" if config.keyswitch == "klss" else "B"
        ctx = NeoContext(params, config=config)
        table[label] = {app.name: app.time_s(ctx) for app in APPS}
    return table


def test_fig14_ablation(benchmark):
    table = benchmark(_build_table)
    baseline = table["TensorFHE"]
    rows = []
    for label, times in table.items():
        rows.append(
            [label]
            + [f"{times[app.name] / baseline[app.name]:.3f}" for app in APPS]
        )
    print()
    print(
        format_table(
            ["step"] + [app.name for app in APPS],
            rows,
            title="Fig. 14: relative execution time, normalised to TensorFHE",
        )
    )
    labels = [label for label, _ in ABLATION_STEPS]
    for app in APPS:
        series = [table[label][app.name] / baseline[app.name] for label in labels]
        # The first step (+KLSS) is at worst neutral; from +dataflow on,
        # every step strictly improves; the full stack lands around the
        # paper's ~3.3x overall gain.
        assert series[1] < 1.1
        assert series[2] > series[3] > series[4]
        assert 0.1 < series[-1] < 0.45, f"{app.name}: final step {series[-1]}"
