"""KLSS key switching (Kim-Lee-Seo-Song, CRYPTO'23) -- Section 2.2.

The six-step pipeline of the paper's Fig. 5:

1. **Mod Up** -- BConv each of the ``beta`` ciphertext digits from its
   ``alpha``-limb group basis into the auxiliary basis ``T`` (``alpha'``
   limbs of ``WordSize_T`` bits).  Because ``T`` far exceeds the digit
   bound, the limbs of ``T`` represent the digit *exactly* as an integer.
2. **NTT** over ``R_T``.
3. **IP** -- multiply-accumulate against ``beta~ x beta`` evk digit pairs.
   The evk digits are the RNS gadget decomposition (groups of ``alpha~``
   limbs of the ``PQ`` chain) of the *hybrid* evk -- KLSS is a key
   decomposition technique, so the key material is shared.
4. **INTT** over ``R_T``.
5. **Recover Limbs** -- the accumulated integers are below ``T/2`` in
   magnitude (Eq. 4), so an exact signed base conversion brings each of
   the ``beta~`` groups back to ``R_PQ``, where they are recombined with
   the gadget factors ``G_hat_i``.
6. **Mod Down** -- divide by ``P`` (shared with the hybrid back-end).

:func:`keyswitch` runs the GEMM-form engine of :mod:`.plan` (one batched
BConv matmul for ModUp, one lazy-reduction einsum for the IP, one native
Recover Limbs); :func:`keyswitch_loop` keeps the per-digit reference
pipeline with its object-dtype CRT recomposition.  Both are bit-identical.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ...math.polynomial import RnsPolynomial
from ...math.rns import bconv_approx_eager
from ..keys import KeySwitchKey
from ..params import CkksParameters
from . import hybrid
from . import plan as _plan
from .plan import (  # noqa: F401  (re-exported under their historical names)
    KlssBoundError,
    KlssLevelKey as _KlssLevelKey,
    _check_ip_bound,
    _extract_digit,
    _limb_groups,
)


def decompose_key(
    ksk: KeySwitchKey, params: CkksParameters, level: int
) -> _KlssLevelKey:
    """Gadget-decompose the hybrid evk for use at `level` (cached).

    Served from the shared key-switch plan cache, keyed by the params
    fingerprint and the key's identity token -- never stashed on the key
    object, so a key reused under a sibling :class:`CkksParameters` (e.g.
    a different ``alpha~``) gets a fresh decomposition instead of a stale
    one.
    """
    if params.klss is None:
        raise ValueError("parameters carry no KLSS configuration")
    return _plan.get_keyswitch_plan(ksk, params, level, "klss").klss_key


def keyswitch(
    poly: RnsPolynomial, ksk: KeySwitchKey, params: CkksParameters
) -> Tuple[RnsPolynomial, RnsPolynomial]:
    """KLSS key switch of `poly`; same contract as :func:`hybrid.keyswitch`.

    Runs the batched GEMM pipeline; bit-identical to
    :func:`keyswitch_loop`.
    """
    level = len(poly.basis) - 1
    if params.klss is None:
        raise ValueError("parameters carry no KLSS configuration")
    ks_plan = _plan.get_keyswitch_plan(ksk, params, level, "klss")
    return _plan.gemm_keyswitch(poly, ks_plan)


def keyswitch_loop(
    poly: RnsPolynomial, ksk: KeySwitchKey, params: CkksParameters
) -> Tuple[RnsPolynomial, RnsPolynomial]:
    """The per-digit reference pipeline (kept for differential testing).

    This is the pre-GEMM dataflow: one eagerly-reduced BConv and NTT per
    digit, a nested per-limb ``multiply``/``add`` inner product with a full
    Barrett reduction per step, and an object-dtype CRT recomposition in
    Recover Limbs.  Bit-identical to :func:`keyswitch`.
    """
    level = len(poly.basis) - 1
    key = decompose_key(ksk, params, level)
    t_basis = key.t_basis
    degree = poly.degree

    # Step 1 + 2: Mod Up into R_T, then NTT.
    raised: List[RnsPolynomial] = []
    for digit in hybrid.decompose_digits(poly, params):
        limbs = bconv_approx_eager(digit.limbs, digit.basis, t_basis)
        raised.append(
            RnsPolynomial(degree, t_basis, limbs, is_ntt=False).to_ntt()
        )

    # Step 3: Inner Product over R_T (beta~ accumulator pairs).
    acc = [
        (
            RnsPolynomial.zero(degree, t_basis, is_ntt=True),
            RnsPolynomial.zero(degree, t_basis, is_ntt=True),
        )
        for _ in range(key.beta_tilde)
    ]
    for i in range(key.beta_tilde):
        acc_b, acc_a = acc[i]
        for j, digit in enumerate(raised):
            evk_b, evk_a = key.digit_pairs[i][j]
            acc_b = acc_b.add(digit.multiply(evk_b))
            acc_a = acc_a.add(digit.multiply(evk_a))
        acc[i] = (acc_b, acc_a)

    # Step 4 + 5: INTT, then Recover Limbs back into R_PQ.
    pq = key.pq_basis
    out_shape = poly.batch_shape + (degree,)
    sum_b = np.zeros(out_shape, dtype=object)
    sum_a = np.zeros(out_shape, dtype=object)
    for (acc_b, acc_a), g_hat in zip(acc, key.gadget_factors):
        r_b = t_basis.compose_signed(acc_b.from_ntt().limbs)
        r_a = t_basis.compose_signed(acc_a.from_ntt().limbs)
        sum_b += r_b * g_hat
        sum_a += r_a * g_hat
    recovered_b = RnsPolynomial(degree, pq, pq.decompose(sum_b), is_ntt=False)
    recovered_a = RnsPolynomial(degree, pq, pq.decompose(sum_a), is_ntt=False)

    # Step 6: Mod Down by P.
    p0 = hybrid.mod_down(recovered_b, params, level, bconv=bconv_approx_eager)
    p1 = hybrid.mod_down(recovered_a, params, level, bconv=bconv_approx_eager)
    return p0, p1
