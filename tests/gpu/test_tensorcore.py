"""Tests for the FP64 / INT8 tensor-core GEMM emulations (bit-exactness)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import tensorcore
from repro.math.primes import ntt_primes

Q36 = ntt_primes(36, 64, 1)[0]
Q48 = ntt_primes(48, 64, 1)[0]
Q60 = ntt_primes(60, 64, 1)[0]


class TestSplitPlans:
    def test_fp64_36bit_k16_needs_3_products(self):
        """Paper Section 3.4: 36-bit GEMM = 3 FP64 plane products."""
        plan = tensorcore.plan_fp64_split(36, 36, 16)
        assert plan.products == 3

    def test_fp64_48bit_k16_needs_4_products(self):
        """Paper Section 3.4: 48-bit GEMM = 2x2 = 4 FP64 plane products."""
        plan = tensorcore.plan_fp64_split(48, 48, 16)
        assert plan.products == 4
        assert (plan.a_planes, plan.b_planes) == (2, 2)

    def test_int8_36bit_booth_25(self):
        """Paper Fig. 3: 36-bit on INT8 = 5x5 = 25 plane products."""
        assert tensorcore.plan_int8_split(36, 36).products == 25

    def test_int8_48bit_booth_36(self):
        """Paper Fig. 3: 48-bit on INT8 = 6x6 = 36 plane products."""
        assert tensorcore.plan_int8_split(48, 48).products == 36

    def test_plan_respects_53_bit_bound(self):
        plan = tensorcore.plan_fp64_split(60, 60, 16)
        bound = ((1 << plan.a_bits) - 1) * ((1 << plan.b_bits) - 1) * 16
        assert bound < 1 << 53

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            tensorcore.plan_fp64_split(0, 36, 16)
        with pytest.raises(ValueError):
            tensorcore.plan_int8_split(36, 0)


def _random_gemm_operands(q, m=16, n=8, k=16, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, int(q), size=(m, k), dtype=np.uint64).astype(object) % q
    b = rng.integers(0, int(q), size=(k, n), dtype=np.uint64).astype(object) % q
    return a, b


@pytest.mark.parametrize("q", [Q36, Q48, Q60])
def test_fp64_gemm_bit_exact(q):
    a, b = _random_gemm_operands(q, seed=int(q) % 97)
    got = tensorcore.fp64_gemm_mod(a, b, q)
    want = tensorcore.reference_gemm_mod(a, b, q)
    assert (np.asarray(got, dtype=object) == np.asarray(want, dtype=object)).all()


@pytest.mark.parametrize("q", [Q36, Q48])
def test_int8_gemm_bit_exact(q):
    a, b = _random_gemm_operands(q, seed=int(q) % 89)
    got = tensorcore.int8_gemm_mod(a, b, q)
    want = tensorcore.reference_gemm_mod(a, b, q)
    assert (np.asarray(got, dtype=object) == np.asarray(want, dtype=object)).all()


def test_fp64_gemm_rejects_mismatched_shapes():
    a = np.zeros((4, 4), dtype=object)
    b = np.zeros((5, 4), dtype=object)
    with pytest.raises(ValueError):
        tensorcore.fp64_gemm_mod(a, b, Q36)


def test_fp64_gemm_rejects_overflowing_plan():
    """A hand-built plan that violates the 53-bit bound must be refused."""
    bad_plan = tensorcore.SplitPlan(a_planes=1, b_planes=1, a_bits=36, b_bits=36)
    a, b = _random_gemm_operands(Q36)
    with pytest.raises(tensorcore.PrecisionOverflowError):
        tensorcore.fp64_gemm_mod(a, b, Q36, plan=bad_plan)


def test_int8_gemm_rejects_huge_k():
    a = np.zeros((8, 40000), dtype=object)
    b = np.zeros((40000, 8), dtype=object)
    with pytest.raises(tensorcore.PrecisionOverflowError):
        tensorcore.int8_gemm_mod(a, b, Q36)


def test_make_tcu_gemm_hook():
    gemm = tensorcore.make_tcu_gemm(Q36)
    a, b = _random_gemm_operands(Q36, seed=5)
    got = gemm(a, b, Q36)
    want = tensorcore.reference_gemm_mod(a, b, Q36)
    assert (np.asarray(got, dtype=object) == np.asarray(want, dtype=object)).all()
    with pytest.raises(ValueError):
        gemm(a, b, Q48)


def test_tcu_gemm_drives_ntt():
    """End-to-end: radix-style GEMM NTT through the FP64 TCU emulation."""
    from repro.math import ntt

    degree = 16
    q = ntt_primes(36, degree, 1)[0]
    rng = np.random.default_rng(7)
    coeffs = rng.integers(0, int(q), size=degree, dtype=np.uint64).astype(object)
    gemm = tensorcore.make_tcu_gemm(q)
    spectrum = ntt.negacyclic_ntt_via_gemm(coeffs, q, (4, 4), gemm=gemm)
    reference = ntt.negacyclic_ntt_via_gemm(coeffs, q, (4, 4))
    assert (spectrum.astype(object) == reference.astype(object)).all()


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=2**36 - 1), st.integers(min_value=2, max_value=32))
def test_property_fp64_single_entry_exact(value, k):
    """1x1 GEMMs over any K are exact for any 36-bit operand values."""
    q = Q36
    a = np.full((1, k), value % q, dtype=object)
    b = np.full((k, 1), (value * 31 + 7) % q, dtype=object)
    got = tensorcore.fp64_gemm_mod(a, b, q)
    want = tensorcore.reference_gemm_mod(a, b, q)
    assert int(got[0, 0]) == int(want[0, 0])
