"""Tests for the comparator models (TensorFHE, HEonGPU, CPU)."""

import pytest

from repro.baselines import CPU_CONFIG, CPU_DEVICE, CpuModel, HeonGpuModel, TensorFheModel
from repro.core import NEO_CONFIG, NeoContext


@pytest.fixture(scope="module")
def neo():
    return NeoContext("C", config=NEO_CONFIG)


class TestTensorFhe:
    def test_always_hybrid(self):
        """TensorFHE never runs KLSS, even on a KLSS-capable set."""
        model = TensorFheModel("C")
        assert model.config.keyswitch == "hybrid"

    def test_uses_int8_tensor_cores(self):
        assert TensorFheModel("A").config.ntt_component == "tcu_int8"

    def test_slower_than_neo(self, neo):
        model = TensorFheModel("B")
        assert model.operation_time_us("hmult", 35) > 1.5 * neo.operation_time_us(
            "hmult", 35
        )

    def test_dnum_ordering(self):
        """Table 6: HMULT grows A -> B -> C with dnum 1 -> 3 -> 9."""
        times = [
            TensorFheModel(s).operation_time_us("hmult", 35) for s in "ABC"
        ]
        assert times[0] < times[1] < times[2]


class TestHeonGpu:
    def test_no_tensor_core_usage(self):
        model = HeonGpuModel("E")
        trace = model.operation_trace("hmult", 35)
        assert all(e.tcu_fp64_flops == 0 and e.tcu_int8_ops == 0 for e in trace.events)

    def test_between_neo_and_tensorfhe(self, neo):
        """The paper's ordering: Neo < HEonGPU < TensorFHE on HMULT."""
        heon = HeonGpuModel("E").operation_time_us("hmult", 35)
        tfhe = TensorFheModel("B").operation_time_us("hmult", 35)
        assert neo.operation_time_us("hmult", 35) < heon < tfhe

    def test_butterfly_ntt(self):
        assert HeonGpuModel("E").config.ntt_style == "butterfly"


class TestCpu:
    def test_device_has_no_tcu(self):
        assert CPU_DEVICE.tcu_fp64_tflops == 0
        assert CPU_DEVICE.tcu_int8_tops == 0

    def test_not_occupancy_limited(self):
        assert CPU_DEVICE.derated_for_batch(1) is CPU_DEVICE

    def test_orders_of_magnitude_slower(self, neo):
        cpu = CpuModel("H")
        ratio = cpu.operation_time_us("hmult", 35) / neo.operation_time_us("hmult", 35)
        assert ratio > 50

    def test_single_ciphertext_batch(self):
        assert CpuModel("H").batch == 1

    def test_config_is_hybrid_butterfly(self):
        assert CPU_CONFIG.keyswitch == "hybrid"
        assert CPU_CONFIG.ntt_style == "butterfly"


class TestOccupancyDerating:
    def test_small_batch_derates_compute(self):
        full = NeoContext("C", config=NEO_CONFIG, batch=128)
        small = NeoContext("C", config=NEO_CONFIG, batch=8)
        assert small.device.cuda_efficiency < full.device.cuda_efficiency

    def test_batch_128_is_reference(self):
        from repro.gpu.device import A100

        assert A100.derated_for_batch(128).cuda_efficiency == pytest.approx(
            A100.cuda_efficiency
        )

    def test_per_ciphertext_time_improves_with_batch(self):
        small = NeoContext("C", config=NEO_CONFIG, batch=8)
        large = NeoContext("C", config=NEO_CONFIG, batch=128)
        assert large.operation_time_us("hmult", 35) < small.operation_time_us(
            "hmult", 35
        )
