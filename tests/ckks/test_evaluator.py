"""Tests for every primitive operation of Section 2.1 (both back-ends)."""

import numpy as np
import pytest

from .conftest import random_slots

TOL = 1e-3


def _dec(encoder, decryptor, ct):
    return encoder.decode(decryptor.decrypt(ct))


@pytest.fixture(params=["hybrid", "klss"])
def any_evaluator(request, evaluator, klss_evaluator):
    return evaluator if request.param == "hybrid" else klss_evaluator


class TestAdditive:
    def test_hadd(self, encoder, encryptor, decryptor, evaluator, rng):
        a = random_slots(rng, encoder.slots)
        b = random_slots(rng, encoder.slots)
        ct = evaluator.add(
            encryptor.encrypt(encoder.encode(a)), encryptor.encrypt(encoder.encode(b))
        )
        assert np.abs(_dec(encoder, decryptor, ct) - (a + b)).max() < TOL

    def test_hsub(self, encoder, encryptor, decryptor, evaluator, rng):
        a = random_slots(rng, encoder.slots)
        b = random_slots(rng, encoder.slots)
        ct = evaluator.sub(
            encryptor.encrypt(encoder.encode(a)), encryptor.encrypt(encoder.encode(b))
        )
        assert np.abs(_dec(encoder, decryptor, ct) - (a - b)).max() < TOL

    def test_negate(self, encoder, encryptor, decryptor, evaluator, rng):
        a = random_slots(rng, encoder.slots)
        ct = evaluator.negate(encryptor.encrypt(encoder.encode(a)))
        assert np.abs(_dec(encoder, decryptor, ct) + a).max() < TOL

    def test_padd(self, encoder, encryptor, decryptor, evaluator, rng):
        a = random_slots(rng, encoder.slots)
        b = random_slots(rng, encoder.slots)
        ct = evaluator.add_plain(encryptor.encrypt(encoder.encode(a)), encoder.encode(b))
        assert np.abs(_dec(encoder, decryptor, ct) - (a + b)).max() < TOL

    def test_psub(self, encoder, encryptor, decryptor, evaluator, rng):
        a = random_slots(rng, encoder.slots)
        b = random_slots(rng, encoder.slots)
        ct = evaluator.sub_plain(encryptor.encrypt(encoder.encode(a)), encoder.encode(b))
        assert np.abs(_dec(encoder, decryptor, ct) - (a - b)).max() < TOL

    def test_add_auto_aligns_levels(self, encoder, encryptor, decryptor, evaluator, rng):
        a = random_slots(rng, encoder.slots)
        b = random_slots(rng, encoder.slots)
        ct_high = encryptor.encrypt(encoder.encode(a))
        ct_low = encryptor.encrypt(encoder.encode(b, level=2))
        ct = evaluator.add(ct_high, ct_low)
        assert ct.level == 2
        assert np.abs(_dec(encoder, decryptor, ct) - (a + b)).max() < TOL

    def test_add_scale_mismatch_rejected(self, encoder, encryptor, evaluator):
        ct0 = encryptor.encrypt(encoder.encode([1.0]))
        ct1 = encryptor.encrypt(encoder.encode([1.0], scale=2.0**20))
        with pytest.raises(ValueError):
            evaluator.add(ct0, ct1)


class TestMultiplicative:
    def test_pmult(self, encoder, encryptor, decryptor, evaluator, rng):
        a = random_slots(rng, encoder.slots)
        b = random_slots(rng, encoder.slots)
        ct = evaluator.rescale(
            evaluator.multiply_plain(
                encryptor.encrypt(encoder.encode(a)), encoder.encode(b)
            )
        )
        assert np.abs(_dec(encoder, decryptor, ct) - a * b).max() < TOL

    def test_hmult(self, encoder, encryptor, decryptor, any_evaluator, rng):
        a = random_slots(rng, encoder.slots)
        b = random_slots(rng, encoder.slots)
        ct = any_evaluator.rescale(
            any_evaluator.multiply(
                encryptor.encrypt(encoder.encode(a)),
                encryptor.encrypt(encoder.encode(b)),
            )
        )
        assert ct.level == any_evaluator.params.max_level - 1
        assert np.abs(_dec(encoder, decryptor, ct) - a * b).max() < TOL

    def test_square(self, encoder, encryptor, decryptor, evaluator, rng):
        a = random_slots(rng, encoder.slots)
        ct = evaluator.rescale(evaluator.square(encryptor.encrypt(encoder.encode(a))))
        assert np.abs(_dec(encoder, decryptor, ct) - a * a).max() < TOL

    def test_unrelinearised_product_still_decrypts(
        self, encoder, encryptor, decryptor, evaluator, rng
    ):
        """The 3-component ciphertext decrypts via the s**2 term."""
        a = random_slots(rng, encoder.slots)
        b = random_slots(rng, encoder.slots)
        ct = evaluator.multiply(
            encryptor.encrypt(encoder.encode(a)),
            encryptor.encrypt(encoder.encode(b)),
            relinearise=False,
        )
        assert not ct.is_relinearised
        decoded = _dec(encoder, decryptor, evaluator.rescale_raw(ct))
        assert np.abs(decoded - a * b).max() < TOL

    def test_relinearise_requires_key(self, params, encoder, encryptor, rng):
        from repro.ckks import Evaluator

        bare = Evaluator(params)
        a = encryptor.encrypt(encoder.encode([1.0]))
        with pytest.raises(ValueError):
            bare.multiply(a, a)

    def test_multiplication_depth_chain(
        self, encoder, encryptor, decryptor, any_evaluator, rng
    ):
        """Chain multiplications down to level 1."""
        a = random_slots(rng, encoder.slots, scale=0.7)
        ct = encryptor.encrypt(encoder.encode(a))
        want = a.copy()
        for _ in range(3):
            ct = any_evaluator.rescale(any_evaluator.square(ct))
            want = want * want
        assert np.abs(_dec(encoder, decryptor, ct) - want).max() < 5e-3

    def test_multiply_on_unrelinearised_rejected(
        self, encoder, encryptor, evaluator, rng
    ):
        a = encryptor.encrypt(encoder.encode([0.5]))
        raw = evaluator.multiply(a, a, relinearise=False)
        with pytest.raises(ValueError):
            evaluator.multiply(raw, a)


class TestRotation:
    @pytest.mark.parametrize("steps", [1, 2, 3, 4, 8])
    def test_hrotate(self, encoder, encryptor, decryptor, any_evaluator, rng, steps):
        a = random_slots(rng, encoder.slots)
        ct = any_evaluator.rotate(encryptor.encrypt(encoder.encode(a)), steps)
        assert np.abs(_dec(encoder, decryptor, ct) - np.roll(a, -steps)).max() < TOL

    def test_rotate_composition(self, encoder, encryptor, decryptor, evaluator, rng):
        a = random_slots(rng, encoder.slots)
        ct = evaluator.rotate(
            evaluator.rotate(encryptor.encrypt(encoder.encode(a)), 1), 2
        )
        assert np.abs(_dec(encoder, decryptor, ct) - np.roll(a, -3)).max() < TOL

    def test_conjugate(self, params, keyset, encoder, encryptor, decryptor, rng):
        from repro.ckks import Evaluator
        from repro.ckks.keys import conjugation_galois_power, KeyGenerator

        gen = KeyGenerator(params, seed=42)
        galois = keyset["galois"]
        power = conjugation_galois_power(params.degree)
        if power not in galois:
            galois.add(power, gen.galois_key(keyset["secret"], power))
        ev = Evaluator(params, relin_key=keyset["relin"], galois_keys=galois)
        a = random_slots(rng, encoder.slots)
        ct = ev.conjugate(encryptor.encrypt(encoder.encode(a)))
        assert np.abs(_dec(encoder, decryptor, ct) - np.conj(a)).max() < TOL

    def test_missing_galois_key_raises(self, params, keyset, encoder, encryptor):
        from repro.ckks import Evaluator

        ev = Evaluator(params, relin_key=keyset["relin"])
        ct = encryptor.encrypt(encoder.encode([1.0]))
        with pytest.raises(ValueError):
            ev.rotate(ct, 1)


class TestRescale:
    def test_rescale_drops_level_and_scale(self, encoder, encryptor, evaluator):
        ct = encryptor.encrypt(encoder.encode([1.0]))
        prod = evaluator.multiply_plain(ct, encoder.encode([1.0]))
        rescaled = evaluator.rescale(prod)
        assert rescaled.level == ct.level - 1
        assert rescaled.scale < prod.scale

    def test_double_rescale(self, params, encoder, encryptor, decryptor, evaluator, rng):
        """DS divides by two primes, consuming two levels (Section 2.1)."""
        a = random_slots(rng, encoder.slots)
        big_scale = float(params.moduli[params.max_level]) * float(
            params.moduli[params.max_level - 1]
        ) * params.scale
        ct = encryptor.encrypt(encoder.encode(a, scale=big_scale))
        ds = evaluator.double_rescale(ct)
        assert ds.level == ct.level - 2
        assert np.abs(_dec(encoder, decryptor, ds) - a).max() < TOL

    def test_rescale_at_level_zero_rejected(self, encoder, encryptor, evaluator):
        ct = encryptor.encrypt(encoder.encode([1.0], level=0))
        with pytest.raises(ValueError):
            evaluator.rescale(ct)

    def test_mod_switch_preserves_value(self, encoder, encryptor, decryptor, evaluator, rng):
        a = random_slots(rng, encoder.slots)
        ct = evaluator.mod_switch_to_level(encryptor.encrypt(encoder.encode(a)), 1)
        assert ct.level == 1
        assert np.abs(_dec(encoder, decryptor, ct) - a).max() < TOL

    def test_mod_switch_cannot_raise(self, encoder, encryptor, evaluator):
        ct = encryptor.encrypt(encoder.encode([1.0], level=1))
        with pytest.raises(ValueError):
            evaluator.mod_switch_to_level(ct, 3)


class TestBackendAgreement:
    def test_hybrid_and_klss_agree(
        self, encoder, encryptor, decryptor, evaluator, klss_evaluator, rng
    ):
        """Both key-switching back-ends produce (approximately) the same result."""
        a = random_slots(rng, encoder.slots)
        b = random_slots(rng, encoder.slots)
        ct0 = encryptor.encrypt(encoder.encode(a))
        ct1 = encryptor.encrypt(encoder.encode(b))
        hy = _dec(encoder, decryptor, evaluator.rescale(evaluator.multiply(ct0, ct1)))
        kl = _dec(
            encoder,
            decryptor,
            klss_evaluator.rescale(klss_evaluator.multiply(ct0, ct1)),
        )
        assert np.abs(hy - kl).max() < TOL

    def test_invalid_method_rejected(self, params):
        from repro.ckks import Evaluator

        with pytest.raises(ValueError):
            Evaluator(params, method="quantum")

    def test_klss_requires_config(self):
        from repro.ckks import Evaluator, small_test_parameters

        plain = small_test_parameters(degree=32, max_level=2, wordsize=25, dnum=1)
        with pytest.raises(ValueError):
            Evaluator(plain, method="klss")
