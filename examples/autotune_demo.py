"""Walk the plan autotuner: search, inspect, and deploy a tuned config.

Four stages:

1. the hierarchical memory model pricing one fixed config against the
   flat baseline (where does the traffic actually land?);
2. a quick-budget search on the A100 -- ranked frontier vs the paper's
   hand-picked NEO_CONFIG;
3. the same search on the consumer-class L4, where NEO_CONFIG cannot
   run at all (no FP64 tensor cores) and the optimum moves;
4. the tuned config rebuilt into a NeoContext and served.

Run:  python examples/autotune_demo.py
"""

from repro.analysis.reporting import format_table
from repro.apps import get_application
from repro.ckks.params import get_set
from repro.core import NEO_CONFIG, NeoContext, tune_app
from repro.gpu.device import A100, L4
from repro.gpu.memory_model import trace_traffic_report


def traffic_tour():
    """Where PackBootstrap's bytes land, untiled vs NTT-chunked.

    Under NEO_CONFIG the inter-stage NTT intermediates of a 128-wide
    batch dwarf the L2 and *spill*: the hierarchy charges their reuse to
    DRAM.  Chunking 32 polynomials through the stages (``ntt_tile=32``)
    keeps the intermediates L2-resident -- terabytes of reuse move from
    the HBM column to the captured column.  Whether that pays off in
    *time* depends on the engine (it is decisive on the
    bandwidth-starved L4, mostly neutral on the A100) -- which is
    exactly why it is a searched axis and not a default.
    """
    app = get_application("packbootstrap")
    rows = []
    for label, tile in (("untiled", None), ("ntt_tile=32", 32)):
        cfg = NEO_CONFIG.with_overrides(ntt_tile=tile)
        ctx = NeoContext("C", device=A100.hier(), config=cfg)
        report = trace_traffic_report(ctx.application_trace(app), A100.hier())
        rows.append([
            label,
            f"{sum(r['hbm_bytes'] for r in report.values()) / 1e12:.2f}",
            f"{sum(r['captured_bytes'] for r in report.values()) / 1e12:.2f}",
            f"{ctx.application_time(app) * 1e3:.1f}",
        ])
    print(format_table(
        ["NTT chunking", "HBM TB", "captured TB", "modeled ms"],
        rows,
        title="PackBootstrap traffic (A100, hierarchical model, batch 128)",
    ))
    flat = NeoContext("C", device=A100, config=NEO_CONFIG)
    hier = NeoContext("C", device=A100.hier(), config=NEO_CONFIG)
    print(
        f"modeled app time: flat {flat.application_time(app) * 1e3:.1f} ms, "
        f"hier {hier.application_time(app) * 1e3:.1f} ms "
        "(the hierarchy only ever adds penalties the flat model hid)\n"
    )


def search(device, label):
    report = tune_app("helr", params="C", device=device, budget="quick", top=5)
    rows = [
        [str(i + 1), f"{cfg.time_s * 1e3:.1f}",
         f"{cfg.speedup:.2f}x" if cfg.speedup else "n/a", cfg.label()]
        for i, cfg in enumerate(report.results)
    ]
    print(format_table(
        ["rank", "modeled ms", "vs NEO_CONFIG", "configuration"],
        rows,
        title=f"HELR tuned frontier on {label}",
    ))
    baseline = (
        f"{report.baseline_time_s * 1e3:.1f} ms"
        if report.baseline_time_s
        else "infeasible (no FP64 tensor cores)"
    )
    print(
        f"NEO_CONFIG baseline: {baseline}; searched {report.probed} probes, "
        f"{report.evaluated} full evals "
        f"({report.pruned_dominated} dominated, {report.pruned_cutoff} "
        f"cut off), plan-cache hit rate {report.cache_hit_rate * 100:.0f}%\n"
    )
    return report.best


def deploy(best):
    """A TunedConfig is a recipe: params + pipeline config, ready to run."""
    params = best.parameter_set(get_set("C"))
    ctx = NeoContext(params, device=A100.hier(), config=best.pipeline_config())
    app = get_application("helr")
    print(
        f"deployed tuned config [{best.label()}]: "
        f"HELR {ctx.application_time(app) * 1e3:.1f} ms per batch "
        f"(keyswitch {ctx.keyswitch_time_us(params.max_level):.0f} us "
        f"at L={params.max_level})"
    )
    print(
        "serving integration: Server(autotune=True) tunes each arriving "
        "app lazily and reports choices in ServingReport"
    )


def main():
    traffic_tour()
    a100_best = search(A100, "NVIDIA A100")
    l4_best = search(L4, "NVIDIA L4 (consumer)")
    moved = [
        k for k, v in a100_best.axes().items() if l4_best.axes()[k] != v
    ]
    print(f"axes that moved between A100 and L4: {', '.join(moved)}\n")
    deploy(a100_best)


if __name__ == "__main__":
    main()
