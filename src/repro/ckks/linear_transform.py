"""Homomorphic linear transforms via the diagonal (BSGS) method.

CoeffToSlot / SlotToCoeff in bootstrapping, and any slot-space matrix
multiplication, reduce to::

    (M z)_i = sum_d  diag_d(M)_i * z_{i+d}

i.e. a sum of rotated ciphertexts weighted by plaintext diagonals.  The
baby-step/giant-step arrangement cuts the rotation count from ``#diags``
to roughly ``2 * sqrt(#diags)``:

    M z = sum_g rot( sum_b  rot^{-g*n1}(diag_{g*n1+b}) * rot^b(z), g*n1 )

This module turns a complex ``slots x slots`` matrix into encoded diagonal
plaintexts and applies it to a ciphertext with an :class:`Evaluator`.

Two appliers share the BSGS schedule:

* the **plan path** (GEMM-form evaluators) compiles the transform into a
  :class:`LinearTransformPlan`: baby rotations off ONE hoisted ModUp via
  :func:`~repro.ckks.keyswitch.plan.hoisted_gemm_rotations`, all
  ``(g, b)`` plaintext products and the inner sums as one NTT-domain
  lazily-reduced einsum, giant rotations as one
  :func:`~repro.ckks.keyswitch.plan.gemm_rotation_batch`, and the final
  Rescale folded into the accumulation epilogue
  (:meth:`~repro.math.modstack.ModulusStack.divide_exact_drop`).
* the **loop path** (``*-loop`` evaluators) keeps per-rotation, per-term
  evaluator calls -- the bit-identical differential baseline (babies are
  hoisted through the loop-form :class:`~repro.ckks.hoisting.HoistedRotator`
  so both paths share the hoisted dataflow).

Encoded diagonal plaintexts are cached per ``(level, scale)`` -- the
bootstrap pipeline applies the same transform at the same level on every
invocation, and re-encoding hundreds of identical diagonals dominated its
profile before the cache.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..math import modarith
from ..math.modstack import ModulusStack
from ..math.ntt import get_stack
from ..math.polynomial import RnsPolynomial
from .ciphertext import Ciphertext
from .encoder import CkksEncoder, Plaintext
from .evaluator import Evaluator
from .hoisting import HoistedRotator, _base_method
from .keys import rotation_galois_power
from .keyswitch import plan as _ksplan


def matrix_diagonals(matrix: np.ndarray, tol: float = 0.0) -> Dict[int, np.ndarray]:
    """Extract the (generalised) diagonals of a square matrix.

    ``diag_d[i] = M[i, (i + d) mod n]``; diagonals whose max magnitude is
    at or below `tol` are dropped (sparse transforms like the DFT factors
    have few nonzero diagonals).
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    diagonals = {}
    for d in range(n):
        diag = np.array([matrix[i, (i + d) % n] for i in range(n)])
        if np.abs(diag).max() > tol:
            diagonals[d] = diag
    return diagonals


class LinearTransformPlan:
    """One transform compiled for a ``(level, method, key set)``.

    Holds the hoisted baby-rotation plan, the giant-step batch plan (both
    served from the shared op-plan LRU), and the NTT-form diagonal tensor
    ``(L_Q, G, B, N)`` pre-encoded at plan build -- everything
    :meth:`LinearTransform.apply` would otherwise recompute per call.
    """

    def __init__(self, lt: "LinearTransform", evaluator: Evaluator, level: int):
        if level < 1:
            raise ValueError(
                "a linear transform consumes one level; "
                f"cannot apply at level {level}"
            )
        params = evaluator.params
        method = _base_method(evaluator.method)
        if evaluator.galois_keys is None:
            raise ValueError("no Galois keys configured")
        self.params = params
        self.method = method
        self.level = level
        self.q_basis = params.q_basis(level)
        self.mq = ModulusStack.for_moduli(self.q_basis.moduli)
        self.ntt = get_stack(params.degree, self.q_basis.moduli)

        self.baby_steps = sorted({b for plan in lt._plan.values() for b in plan})
        self.bmap = {b: i for i, b in enumerate(self.baby_steps)}
        self.live_babies = [b for b in self.baby_steps if b % lt.slots != 0]
        self.giants = sorted(lt._plan)
        self.live_giants = [g for g in self.giants if (g * lt.baby) % lt.slots != 0]

        gk = evaluator.galois_keys
        self.hoist: Optional[_ksplan.HoistedRotationPlan] = None
        if self.live_babies:
            powers = tuple(
                rotation_galois_power(b, params.degree) for b in self.live_babies
            )
            self.hoist = _ksplan.get_hoisted_rotation_plan(
                gk, powers, params, level, method
            )
        self.giant_batch: Optional[_ksplan.RotationBatchPlan] = None
        if self.live_giants:
            powers = tuple(
                rotation_galois_power(g * lt.baby, params.degree)
                for g in self.live_giants
            )
            self.giant_batch = _ksplan.get_rotation_batch_plan(
                gk, powers, params, level, method
            )

        # Diagonal plaintexts, encoded once per level and stacked into one
        # NTT-domain tensor; absent (g, b) slots stay exact zeros, which
        # contribute exact-zero products to the inner einsum (bit-identical
        # to the loop path simply skipping those terms).
        pts = lt._encoded_diagonals(level)
        self.pt_scale = next(iter(pts.values())).scale
        ptt = self.mq.zeros(
            (len(self.giants), len(self.baby_steps), params.degree)
        )
        for gi, g in enumerate(self.giants):
            for b in lt._plan[g]:
                ptt[:, gi, self.bmap[b]] = (
                    pts[(g, b)].poly.keep_limbs(level + 1).to_ntt().stack
                )
        self.pt_tensor = ptt

        # Fused-rescale epilogue constants.
        self.drop_modulus = self.q_basis.moduli[level]
        self.keep_basis = self.q_basis.subbasis(0, level)
        self.mkeep = ModulusStack.for_moduli(self.keep_basis.moduli)

    # -- memory-hierarchy view ------------------------------------------------

    def operand_bytes(self):
        """Footprints of the constants one BSGS application re-reads: the
        diagonal plaintext tensor plus the hoisted/giant key stacks."""
        operands = {"pt_tensor": float(self.pt_tensor.size) * 8.0}
        if self.hoist is not None:
            for name, nbytes in self.hoist.operand_bytes().items():
                operands[f"hoist.{name}"] = nbytes
        if self.giant_batch is not None:
            operands["giant.evk"] = float(self.giant_batch.evk.size) * 8.0
        return operands

    def traffic_report(self, device, batch: int = 1):
        """Where each transform constant's batch reuse lands on `device`."""
        return _ksplan.operand_traffic_report(
            self.operand_bytes(), device, batch
        )

    def run(self, ct: Ciphertext) -> Ciphertext:
        """Apply the compiled transform (one level consumed)."""
        params = self.params
        degree = params.degree
        # -- babies: identity slot(s) + one hoisted GEMM batch -------------
        bab = np.empty(
            (len(self.q_basis), 2, len(self.baby_steps), degree),
            dtype=self.mq.dtype,
        )
        for b in self.baby_steps:
            if b not in self.live_babies:
                bab[:, 0, self.bmap[b]] = ct.c0.from_ntt().stack
                bab[:, 1, self.bmap[b]] = ct.c1.from_ntt().stack
        if self.hoist is not None:
            pairs = _ksplan.hoisted_gemm_rotations(ct.c0, ct.c1, self.hoist)
            for b, (p0, p1) in zip(self.live_babies, pairs):
                bab[:, 0, self.bmap[b]] = p0.stack
                bab[:, 1, self.bmap[b]] = p1.stack

        # -- all (g, b) products and inner sums: one NTT-domain einsum -----
        f = self.ntt.forward(bab)  # (L, 2, B, N)
        inner = self.mq.lazy_mul_sum(
            f[:, :, None], self.pt_tensor[:, None], axis=3
        )  # (L, 2, G, N)
        inner = self.ntt.inverse(inner)

        # -- giants: identity slice(s) + one batched rotation key switch ---
        acc: Optional[np.ndarray] = None
        for gi, g in enumerate(self.giants):
            if g not in self.live_giants:
                sl = inner[:, :, gi]
                acc = sl.copy() if acc is None else self.mq.add(acc, sl)
        if self.giant_batch is not None:
            idxs = [self.giants.index(g) for g in self.live_giants]
            out = _ksplan.gemm_rotation_batch(
                np.ascontiguousarray(inner[:, 0, idxs]),
                np.ascontiguousarray(inner[:, 1, idxs]),
                self.giant_batch,
            )  # (L, 2, k, N)
            for i in range(len(self.live_giants)):
                sl = out[:, :, i]
                acc = sl.copy() if acc is None else self.mq.add(acc, sl)

        # -- fused Rescale epilogue ----------------------------------------
        scaled = self.mkeep.divide_exact_drop(
            acc[: self.level], acc[self.level], self.drop_modulus
        )
        c0 = RnsPolynomial._wrap(
            degree, self.keep_basis, np.ascontiguousarray(scaled[:, 0]), False
        )
        c1 = RnsPolynomial._wrap(
            degree, self.keep_basis, np.ascontiguousarray(scaled[:, 1]), False
        )
        return Ciphertext(
            c0, c1, (ct.scale * self.pt_scale) / self.drop_modulus, params
        )


class LinearTransform:
    """A slots-space matrix, preprocessed for homomorphic application.

    Args:
        encoder: the CKKS encoder (defines slot count and scales).
        matrix: ``slots x slots`` complex matrix.
        bsgs_ratio: giant-step size is ``~sqrt(#diags * bsgs_ratio)``.

    Consumes one multiplicative level per application (a single Rescale).
    """

    def __init__(
        self,
        encoder: CkksEncoder,
        matrix: np.ndarray,
        bsgs_ratio: float = 1.0,
    ):
        self.encoder = encoder
        self.slots = encoder.slots
        diagonals = matrix_diagonals(matrix)
        if not diagonals:
            raise ValueError("matrix has no nonzero diagonals")
        self.diagonal_indices = sorted(diagonals)
        self.baby = max(1, round(math.sqrt(len(diagonals) * bsgs_ratio)))
        #: plan[g][b] = plaintext diagonal for rotation g*baby + b (pre-rotated).
        self._plan: Dict[int, Dict[int, np.ndarray]] = {}
        for d, diag in diagonals.items():
            g, b = divmod(d, self.baby)
            # Pre-rotate the diagonal so the giant-step rotation commutes.
            self._plan.setdefault(g, {})[b] = np.roll(diag, g * self.baby)
        #: Encoded diagonals keyed by (level, scale) -- see _encoded_diagonals.
        self._pt_cache: Dict[Tuple[int, Optional[float]], Dict[Tuple[int, int], Plaintext]] = {}
        #: Compiled plans keyed by (level, method, backend, key tokens).
        self._plans: Dict[tuple, LinearTransformPlan] = {}

    def required_rotations(self) -> List[int]:
        """Slot rotations whose Galois keys must exist before `apply`."""
        steps = {b for plan in self._plan.values() for b in plan if b}
        steps |= {g * self.baby for g in self._plan if g}
        return sorted(steps)

    def _encoded_diagonals(
        self, level: int, scale: Optional[float] = None
    ) -> Dict[Tuple[int, int], Plaintext]:
        """Every diagonal encoded at (`level`, `scale`), cached.

        Both appliers draw from this cache, so a second application at the
        same level performs zero re-encodes.
        """
        key = (level, scale)
        cached = self._pt_cache.get(key)
        if cached is None:
            cached = {}
            for g, plan in sorted(self._plan.items()):
                for b, diag in sorted(plan.items()):
                    if scale is None:
                        cached[(g, b)] = self.encoder.encode(diag, level=level)
                    else:
                        cached[(g, b)] = self.encoder.encode(
                            diag, level=level, scale=scale
                        )
            self._pt_cache[key] = cached
        return cached

    def _compiled(self, evaluator: Evaluator, level: int) -> LinearTransformPlan:
        base = _base_method(evaluator.method)
        tokens = tuple(
            evaluator.galois_keys.get(rotation_galois_power(s, evaluator.params.degree)).cache_token
            for s in self.required_rotations()
        ) if evaluator.galois_keys is not None else ()
        key = (
            level,
            base,
            evaluator.params.fingerprint(),
            tokens,
            modarith._BARRETT_ENABLED,
        )
        plan = self._plans.get(key)
        if plan is None:
            plan = LinearTransformPlan(self, evaluator, level)
            self._plans[key] = plan
        return plan

    def apply(self, evaluator: Evaluator, ct: Ciphertext) -> Ciphertext:
        """Homomorphically compute ``M z`` (one level consumed).

        GEMM-form evaluators run the compiled :class:`LinearTransformPlan`;
        ``*-loop`` evaluators run the bit-identical per-term loop baseline.
        """
        if ct.c2 is not None:
            raise ValueError("linear transform requires a relinearised ciphertext")
        if evaluator.method.endswith("-loop"):
            return self.apply_loop(evaluator, ct)
        return self._compiled(evaluator, ct.level).run(ct)

    def apply_loop(self, evaluator: Evaluator, ct: Ciphertext) -> Ciphertext:
        """The per-rotation, per-term reference applier.

        Babies come off one hoisted ModUp (loop form), every ``(g, b)``
        product is an evaluator ``multiply_plain``/``add``, giants are
        individual ``rotate`` calls, and the Rescale is a standalone
        evaluator op.  Bit-identical to the plan path.
        """
        level = ct.level
        pts = self._encoded_diagonals(level)
        baby_steps = [b for plan in self._plan.values() for b in plan]
        rotator = HoistedRotator(
            ct, evaluator.params, method=_base_method(evaluator.method)
        )
        baby_rotations: Dict[int, Ciphertext] = {}
        for b in sorted(set(baby_steps)):
            baby_rotations[b] = rotator.rotate(b, evaluator.galois_keys)
        outer: Optional[Ciphertext] = None
        for g, plan in sorted(self._plan.items()):
            inner: Optional[Ciphertext] = None
            for b in sorted(plan):
                term = evaluator.multiply_plain(baby_rotations[b], pts[(g, b)])
                inner = term if inner is None else evaluator.add(inner, term)
            if g:
                inner = evaluator.rotate(inner, g * self.baby)
            outer = inner if outer is None else evaluator.add(outer, inner)
        return evaluator.rescale(outer)


def identity_transform(encoder: CkksEncoder) -> LinearTransform:
    """The identity matrix as a transform (useful for tests)."""
    return LinearTransform(encoder, np.eye(encoder.slots, dtype=np.complex128))


def rotation_keys_for(
    transforms: List[LinearTransform],
) -> List[int]:
    """Union of rotation steps a set of transforms requires."""
    steps = set()
    for transform in transforms:
        steps.update(transform.required_rotations())
    return sorted(steps)
