"""Tensor-core fragment shapes, tiling and padding arithmetic.

TCUs execute GEMM on fixed *fragment* shapes (Section 3.4): FP64 supports
only ``8x8x4``; INT8 supports ``16x16x16``, ``32x8x16`` and ``8x32x16``.
When the problem dimensions do not divide the fragment dimensions the
operands are zero-padded and part of the computation is wasted -- the
paper's *valid proportion* (Fig. 11 and Fig. 12), which drives Neo's
kernel-mapping policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class FragmentShape:
    """One WMMA fragment: a warp-level ``m x n x k`` matrix multiply."""

    m: int
    n: int
    k: int

    @property
    def volume(self) -> int:
        """Multiply-accumulate count of one fragment operation."""
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        """FLOPs of one fragment operation (2 per MAC)."""
        return 2 * self.volume

    def __str__(self) -> str:
        return f"{self.m}x{self.n}x{self.k}"


#: The only FP64 fragment shape on Ampere.
FP64_FRAGMENT = FragmentShape(8, 8, 4)

#: The INT8 fragment shapes on Ampere.
INT8_FRAGMENTS: Tuple[FragmentShape, ...] = (
    FragmentShape(16, 16, 16),
    FragmentShape(32, 8, 16),
    FragmentShape(8, 32, 16),
)


def tile_counts(m: int, n: int, k: int, shape: FragmentShape) -> Tuple[int, int, int]:
    """Fragments needed along each dimension for an ``m x n x k`` GEMM."""
    _validate_dims(m, n, k)
    return (
        math.ceil(m / shape.m),
        math.ceil(n / shape.n),
        math.ceil(k / shape.k),
    )


def fragment_ops(m: int, n: int, k: int, shape: FragmentShape) -> int:
    """Total fragment operations (including padded, wasted ones)."""
    tm, tn, tk = tile_counts(m, n, k, shape)
    return tm * tn * tk


def padded_dims(m: int, n: int, k: int, shape: FragmentShape) -> Tuple[int, int, int]:
    """Problem dimensions after zero-padding up to fragment multiples."""
    tm, tn, tk = tile_counts(m, n, k, shape)
    return tm * shape.m, tn * shape.n, tk * shape.k

def valid_proportion(m: int, n: int, k: int, shape: FragmentShape) -> float:
    """Fraction of fragment MACs that compute real (non-padding) data.

    This is the quantity plotted in Fig. 12; Neo maps IP to the TCU only
    when it exceeds 0.8 (Section 4.5.3).
    """
    pm, pn, pk = padded_dims(m, n, k, shape)
    return (m * n * k) / (pm * pn * pk)


def best_fragment(
    m: int, n: int, k: int, shapes: Sequence[FragmentShape]
) -> FragmentShape:
    """The shape from `shapes` with the highest valid proportion.

    Ties break toward fewer total fragment ops, then declaration order.
    """
    if not shapes:
        raise ValueError("need at least one candidate shape")
    return max(
        shapes,
        key=lambda s: (valid_proportion(m, n, k, s), -fragment_ops(m, n, k, s)),
    )


def best_int8_fragment(m: int, n: int, k: int) -> FragmentShape:
    """The best INT8 fragment shape for an ``m x n x k`` GEMM."""
    return best_fragment(m, n, k, INT8_FRAGMENTS)


def _validate_dims(m: int, n: int, k: int):
    if min(m, n, k) < 1:
        raise ValueError(f"GEMM dims must be positive, got {(m, n, k)}")
