"""Tests for parameter/key/ciphertext serialization."""

import numpy as np
import pytest

from repro.ckks import Decryptor, Encryptor, Evaluator
from repro.ckks import serialization as ser

from .conftest import random_slots


class TestParameters:
    def test_roundtrip(self, params):
        payload = ser.serialize_parameters(params)
        restored = ser.deserialize_parameters(payload)
        assert restored.moduli == params.moduli
        assert restored.special_primes == params.special_primes
        assert restored.aux_primes == params.aux_primes
        assert restored.scale == params.scale

    def test_bytes_roundtrip(self, params):
        blob = ser.to_bytes(ser.serialize_parameters(params))
        assert isinstance(blob, bytes)
        restored = ser.deserialize_parameters(ser.from_bytes(blob))
        assert restored.moduli == params.moduli

    def test_version_checked(self, params):
        payload = ser.serialize_parameters(params)
        payload["version"] = 99
        with pytest.raises(ser.DeserializationError):
            ser.deserialize_parameters(payload)

    def test_checksum_detects_tampering(self, params):
        payload = ser.serialize_parameters(params)
        payload["moduli_checksum"] += 1
        with pytest.raises(ser.DeserializationError):
            ser.deserialize_parameters(payload)

    def test_missing_field(self, params):
        payload = ser.serialize_parameters(params)
        del payload["dnum"]
        with pytest.raises(ser.DeserializationError):
            ser.deserialize_parameters(payload)

    def test_garbage_bytes(self):
        with pytest.raises(ser.DeserializationError):
            ser.from_bytes(b"\xff\xfe not json")


class TestCiphertexts:
    def test_roundtrip_decrypts(self, params, encoder, encryptor, decryptor, rng):
        values = random_slots(rng, encoder.slots)
        ct = encryptor.encrypt(encoder.encode(values))
        restored = ser.deserialize_ciphertext(
            ser.from_bytes(ser.to_bytes(ser.serialize_ciphertext(ct))), params
        )
        got = encoder.decode(decryptor.decrypt(restored))
        assert np.abs(got - values).max() < 1e-3

    def test_three_component_roundtrip(
        self, params, encoder, encryptor, decryptor, evaluator, rng
    ):
        values = random_slots(rng, encoder.slots, scale=0.5)
        ct = encryptor.encrypt(encoder.encode(values))
        raw = evaluator.multiply(ct, ct, relinearise=False)
        restored = ser.deserialize_ciphertext(ser.serialize_ciphertext(raw), params)
        assert not restored.is_relinearised
        got = encoder.decode(decryptor.decrypt(evaluator.rescale_raw(restored)))
        assert np.abs(got - values * values).max() < 1e-2

    def test_level_preserved(self, params, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([1.0], level=2))
        restored = ser.deserialize_ciphertext(ser.serialize_ciphertext(ct), params)
        assert restored.level == 2

    def test_missing_component(self, params, encoder, encryptor):
        payload = ser.serialize_ciphertext(encryptor.encrypt(encoder.encode([1.0])))
        del payload["c1"]
        with pytest.raises(ser.DeserializationError):
            ser.deserialize_ciphertext(payload, params)


class TestKeys:
    def test_secret_roundtrip(self, params, keyset):
        restored = ser.deserialize_secret_key(
            ser.serialize_secret_key(keyset["secret"]), params
        )
        assert (restored.coeffs == keyset["secret"].coeffs).all()

    def test_secret_length_checked(self, params, keyset):
        payload = ser.serialize_secret_key(keyset["secret"])
        payload["coeffs"] = payload["coeffs"][:-1]
        with pytest.raises(ser.DeserializationError):
            ser.deserialize_secret_key(payload, params)

    def test_public_key_still_encrypts(self, params, keyset, encoder, decryptor, rng):
        restored = ser.deserialize_public_key(
            ser.serialize_public_key(keyset["public"]), params
        )
        encryptor = Encryptor(params, public_key=restored, seed=9)
        values = random_slots(rng, encoder.slots)
        ct = encryptor.encrypt(encoder.encode(values))
        assert np.abs(encoder.decode(decryptor.decrypt(ct)) - values).max() < 1e-3

    def test_relin_key_still_switches(
        self, params, keyset, encoder, encryptor, decryptor, rng
    ):
        restored = ser.deserialize_keyswitch_key(
            ser.serialize_keyswitch_key(keyset["relin"]), params
        )
        evaluator = Evaluator(params, relin_key=restored)
        values = random_slots(rng, encoder.slots, scale=0.5)
        ct = encryptor.encrypt(encoder.encode(values))
        prod = evaluator.rescale(evaluator.multiply(ct, ct))
        got = encoder.decode(decryptor.decrypt(prod))
        assert np.abs(got - values * values).max() < 1e-2

    def test_galois_keys_still_rotate(
        self, params, keyset, encoder, encryptor, decryptor, rng
    ):
        restored = ser.deserialize_galois_keys(
            ser.serialize_galois_keys(keyset["galois"]), params
        )
        evaluator = Evaluator(params, galois_keys=restored)
        values = random_slots(rng, encoder.slots)
        ct = encryptor.encrypt(encoder.encode(values))
        out = evaluator.rotate(ct, 1)
        got = encoder.decode(decryptor.decrypt(out))
        assert np.abs(got - np.roll(values, -1)).max() < 1e-3
