"""FHE application workloads: PackBootstrap, HELR, ResNet-20/32/56."""

from .bootstrap_app import PackBootstrap
from .encrypted_conv import EncryptedConv2d
from .helr import EncryptedLogisticRegression, HelrApp
from .resnet import SUPPORTED_DEPTHS, ResNetApp

#: The paper's three application families (Table 5 column order).
def standard_applications(single_scaling: bool = False):
    """Fresh instances of every Table 5 application.

    With ``single_scaling=True`` the bootstraps run without Double Rescale
    (the SS rows of Table 5, evaluated at the L = 23 Sets F/G).
    """
    ds = not single_scaling
    return [
        PackBootstrap(use_double_rescale=ds),
        HelrApp(single_scaling=single_scaling),
        ResNetApp(20, single_scaling=single_scaling),
        ResNetApp(32, single_scaling=single_scaling),
        ResNetApp(56, single_scaling=single_scaling),
    ]


#: CLI/profiler registry: application name -> zero-arg factory.
APPLICATIONS = {
    "packbootstrap": PackBootstrap,
    "bootstrap": PackBootstrap,  # alias
    "helr": HelrApp,
    "resnet20": lambda: ResNetApp(20),
    "resnet32": lambda: ResNetApp(32),
    "resnet56": lambda: ResNetApp(56),
}


def get_application(name: str):
    """Instantiate a Table 5 application by (case-insensitive) name."""
    try:
        return APPLICATIONS[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(set(APPLICATIONS) - {"bootstrap"}))
        raise ValueError(f"unknown application {name!r}; choose from {known}") from None


__all__ = [
    "APPLICATIONS",
    "EncryptedConv2d",
    "EncryptedLogisticRegression",
    "HelrApp",
    "PackBootstrap",
    "ResNetApp",
    "SUPPORTED_DEPTHS",
    "get_application",
    "standard_applications",
]
