"""BConv as matrix multiplication (the paper's Algorithm 2 + Fig. 6).

The original BConv (Algorithm 1) reads every input coefficient ``alpha'``
times.  Neo instead multiplies each limb by its ``q_hat_inv`` factor,
reorders to ``(N, BS, alpha)``, and runs one ``(BS*N) x alpha' x alpha``
GEMM against the constant matrix ``B[i, j] = q_hat_i mod p_j`` -- with the
plane products mapped onto the FP64 tensor cores.

Both a bit-exact functional path (:meth:`NeoBConv.run`) and an analytic
cost path (:func:`bconv_cost`) are provided.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Optional

import numpy as np

from ..gpu.memory_model import bconv_traffic
from ..gpu.kernels import (
    CACHE_REREAD_CAP,
    ELEMENTWISE_FLOPS,
    KernelCost,
    elementwise_cost,
    gemm_cost_cuda,
    gemm_cost_tcu_fp64,
    gemm_cost_tcu_int8,
    word_bytes,
)
from ..math import modarith
from ..math.rns import RnsBasis, bconv_matrix
from . import layout


class NeoBConv:
    """The GEMM-form BConv kernel between two RNS bases."""

    def __init__(self, from_basis: RnsBasis, to_basis: RnsBasis, gemm: Optional[Callable] = None):
        """Args:
            from_basis: source basis (``alpha`` limbs).
            to_basis: target basis (``alpha'`` limbs).
            gemm: optional ``gemm(a, b) -> exact integer matrix`` hook; by
                default exact integer matmul stands in for the TCU.  The
                GEMM must be *exact* (no modular reduction) because each
                output column is reduced by a different prime afterwards.
        """
        self.from_basis = from_basis
        self.to_basis = to_basis
        self._gemm = gemm if gemm is not None else self._integer_gemm
        self._matrix = bconv_matrix(from_basis, to_basis)  # (alpha, alpha')
        # Per-target uint64 columns of B (column j is reduced mod p_j, so
        # each fits a machine word whenever p_j does).
        self._native_cols = (
            [self._matrix[:, j].astype(np.uint64) for j in range(len(to_basis))]
            if all(modarith.uses_native_backend(p) for p in to_basis.moduli)
            else None
        )

    @staticmethod
    def _integer_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a.astype(object) @ b.astype(object)

    def run(self, tensor: np.ndarray) -> np.ndarray:
        """Convert a ``(alpha, BS, N)`` limb tensor to ``(alpha', BS, N)``.

        Semantics match :func:`repro.math.rns.bconv_approx` applied to every
        ``(batch, coefficient)`` column -- the test-suite asserts it.
        """
        alpha, batch, n = self._check_input(tensor)
        native = (
            tensor.dtype != object
            and self._native_cols is not None
            and all(
                modarith.uses_native_backend(q) for q in self.from_basis.moduli
            )
        )
        # Step 1: scalar multiplication by q_hat_inv_i (per input limb).
        scaled = np.empty(tensor.shape, dtype=np.uint64 if native else object)
        for i, (q, inv) in enumerate(
            zip(self.from_basis.moduli, self.from_basis.q_hat_inv)
        ):
            scaled[i] = modarith.scalar_mul_mod(
                modarith.asarray_mod(tensor[i], q), inv, q
            )
        # Step 1b: data reorder (alpha, BS, N) -> (N, BS, alpha).
        reordered = layout.bconv_forward(scaled)
        flat = reordered.reshape(n * batch, alpha)
        if native and self._gemm is NeoBConv._integer_gemm:
            # Steps 2+3 fused in uint64: each output column reduces by its
            # own prime, so run one Barrett-reduced GEMV per target limb --
            # the same residues the exact GEMM + merge produces, with no
            # bignum round trip.
            out_cols = [
                modarith.matmul_mod(flat, col, p)
                for col, p in zip(self._native_cols, self.to_basis.moduli)
            ]
            stacked = np.stack(out_cols, axis=1).reshape(
                n, batch, len(self.to_basis)
            )
            return layout.bconv_backward(stacked)
        # Step 2: one big GEMM (BS*N, alpha) @ (alpha, alpha'), exact integers.
        product = self._gemm(flat, self._matrix)
        # Step 3: per-column modular reduction (CUDA-core merge step).
        out_cols = []
        for j, p in enumerate(self.to_basis.moduli):
            out_cols.append(modarith.asarray_mod(np.asarray(product[:, j]), p))
        stacked = np.stack(out_cols, axis=1).reshape(n, batch, len(self.to_basis))
        # Step 4: reorder back to limb-contiguous (alpha', BS, N).
        return layout.bconv_backward(stacked)

    def _check_input(self, tensor: np.ndarray):
        if tensor.ndim != 3:
            raise ValueError(f"expected (alpha, BS, N) tensor, got {tensor.shape}")
        alpha, batch, n = tensor.shape
        if alpha != len(self.from_basis):
            raise ValueError(
                f"tensor has {alpha} limbs but basis has {len(self.from_basis)}"
            )
        return alpha, batch, n


def reference_bconv(tensor: np.ndarray, from_basis: RnsBasis, to_basis: RnsBasis) -> np.ndarray:
    """Algorithm 1 (original element-wise BConv) on a limb tensor."""
    from ..math.rns import bconv_approx

    alpha, batch, n = tensor.shape
    flat = [tensor[i].reshape(batch * n) for i in range(alpha)]
    out = bconv_approx(flat, from_basis, to_basis)
    return np.stack([np.asarray(limb).reshape(batch, n) for limb in out])


# ---------------------------------------------------------------------------
# Analytic cost
# ---------------------------------------------------------------------------


@lru_cache(maxsize=4096)
def bconv_cost(
    alpha: int,
    alpha_out: int,
    batch: int,
    n: int,
    wordsize: int,
    style: str = "gemm",
    component: str = "tcu_fp64",
    fused: bool = True,
    batch_tile: Optional[int] = None,
) -> KernelCost:
    """Cost of one BConv over a full batch.

    Pure function of its scalar arguments, memoised process-wide (frozen
    result, safe to share; the autotuner sweeps hit the same shapes often).

    Args:
        style: ``"elementwise"`` (Algorithm 1) or ``"gemm"`` (Algorithm 2).
        component: GEMM execution unit (``cuda`` / ``tcu_fp64`` / ``tcu_int8``);
            ignored for the element-wise style.
        fused: fold pre/post-processing into the GEMM kernel (Section 4.6),
            keeping intermediates in shared memory.
        batch_tile: ciphertexts processed per kernel tile (the hierarchy
            model's working-set knob; ``None`` runs the whole batch).
    """
    wb = word_bytes(wordsize)
    elements_in = alpha * batch * n
    elements_out = alpha_out * batch * n
    if style == "elementwise":
        # Every input coefficient is logically read once per output level
        # (poor reuse, Algorithm 1); DRAM amplification saturates at the
        # cache cap in the time model.
        reread = min(alpha_out, CACHE_REREAD_CAP)
        return KernelCost(
            name="bconv",
            cuda_flops=elements_in * alpha_out * 8.0,
            bytes_read=elements_in * reread * wb,
            bytes_written=elements_out * wb,
            # The hierarchy model sees the *uncapped* tail of the logical
            # re-reads; it hits L2 only if the (tiled) input stays resident.
            traffic=bconv_traffic(
                elements_in, alpha_out, reread, wb, batch, batch_tile
            ),
        )
    if style != "gemm":
        raise ValueError(f"unknown BConv style {style!r}")
    m, n_dim, k_dim = batch * n, alpha_out, alpha
    builders = {
        "cuda": gemm_cost_cuda,
        "tcu_fp64": gemm_cost_tcu_fp64,
        "tcu_int8": gemm_cost_tcu_int8,
    }
    try:
        gemm = builders[component]("bconv", m, n_dim, k_dim, wordsize, include_io=False)
    except KeyError:
        raise ValueError(f"unknown component {component!r}")
    pre = elementwise_cost(
        "bconv",
        elements_in,
        wordsize,
        flops_per_element=8.0 + ELEMENTWISE_FLOPS,  # scalar mul + reorder
        reads_per_element=1.0,
        writes_per_element=1.0,
    )
    post = elementwise_cost(
        "bconv",
        elements_out,
        wordsize,
        flops_per_element=8.0 + ELEMENTWISE_FLOPS,  # reduce + reorder
        reads_per_element=1.0,
        writes_per_element=1.0,
    )
    staged = pre.merged(gemm).merged(post, name="bconv")
    # Constant conversion matrix B[i, j] = q_hat_i mod p_j: re-streamed
    # once per batch tile; its footprint is what must stay resident.
    matrix_bytes = alpha * alpha_out * wb
    traffic = bconv_traffic(
        elements_in, 0.0, 0.0, wb, batch, batch_tile, matrix_bytes=matrix_bytes
    )
    if fused:
        # Intermediates (reordered input, raw GEMM output) stay on-chip:
        # only the true input and output touch global memory.
        return KernelCost(
            name="bconv",
            cuda_flops=staged.cuda_flops,
            tcu_fp64_flops=staged.tcu_fp64_flops,
            tcu_int8_ops=staged.tcu_int8_ops,
            bytes_read=elements_in * wb,
            bytes_written=elements_out * wb,
            launches=1,
            traffic=traffic,
        )
    return staged
