"""Number-theoretic transforms over NTT-friendly prime fields.

Three functionally equivalent implementations are provided, mirroring the
paper's discussion (Section 4.4):

* :class:`NttPlan` -- the classic iterative negacyclic NTT (Cooley-Tukey
  forward / Gentleman-Sande inverse with merged ``psi`` twisting).  Every
  butterfly stage runs as one vectorised numpy expression over all blocks
  at once; on the native backends the twiddle products use Shoup's trick
  against per-stage precomputed constant columns.  This is the bit-exact
  reference.
* :class:`NttStack` -- the same transform batched across a whole RNS limb
  stack: one call moves an ``(L, ..., N)`` double-CRT tensor between the
  coefficient and evaluation domains, with per-limb twiddle tables stacked
  into ``(L, N)`` arrays so no Python-level per-limb loop remains.
* :func:`four_step_ntt` / :func:`multi_step_ntt` -- the matrix-multiplication
  formulations (four-step and the generalised "ten-step"/radix-16
  decomposition) that Neo maps onto tensor cores.  They operate on the
  *cyclic* DFT after an explicit ``psi``-twist, exactly as Fig. 9 shows
  ("Mul & Trans" = twist + transpose between GEMMs).

All transforms agree element-for-element; the test-suite asserts it.

Plans are memoised in a bounded LRU cache (same discipline as
:mod:`repro.core.trace_cache`; ``math`` must not import ``core``, so the
cache is local but its counters share the unified
:class:`repro.telemetry.stats.CacheStats` vocabulary and register with the
process-wide cache directory); see :func:`clear_plan_cache` /
:func:`plan_cache_stats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import modarith
from ..telemetry.stats import CacheStats, register_cache
from .primes import root_of_unity

_U64 = np.uint64


def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Indices of the bit-reversal permutation for power-of-two `n`."""
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def is_power_of_two(n: int) -> bool:
    """True when `n` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def _shoup_table(values: np.ndarray, modulus: int) -> np.ndarray:
    """Per-entry Shoup constants ``floor(v * 2**64 / q)`` as ``uint64``."""
    return np.array(
        [modarith.shoup_precompute(int(v), modulus) for v in values.ravel()],
        dtype=_U64,
    ).reshape(values.shape)


class NttPlan:
    """Precomputed tables for the negacyclic NTT of a fixed ``(degree, q)``.

    The transform maps coefficient vectors of ``Z_q[X]/(X^N + 1)`` to their
    evaluations at the odd powers of a primitive ``2N``-th root ``psi``;
    multiplication becomes element-wise in that domain.

    The backend (``uint64`` vs object) is captured at construction time:
    plans built inside :func:`modarith.object_backend` keep exact
    object-dtype tables for their whole lifetime, which is what lets the
    benchmarks race the two backends on identical transforms.
    """

    def __init__(self, degree: int, modulus: int):
        if not is_power_of_two(degree):
            raise ValueError(f"degree must be a power of two, got {degree}")
        if (modulus - 1) % (2 * degree) != 0:
            raise ValueError(f"modulus {modulus} is not NTT-friendly for degree {degree}")
        self.degree = degree
        self.modulus = modulus
        self.native = modarith.uses_native_backend(modulus)
        self.psi = root_of_unity(2 * degree, modulus)
        self.psi_inv = modarith.inv_mod(self.psi, modulus)
        self.degree_inv = modarith.inv_mod(degree, modulus)
        #: Residues below ``2**31`` admit the two-multiply ``mulhi_op32``.
        self._op32 = self.native and modulus < 2**31
        rev = _bit_reverse_permutation(degree)
        powers = self._power_table(self.psi)
        inv_powers = self._power_table(self.psi_inv)
        self._psi_rev = powers[rev]
        self._psi_inv_rev = inv_powers[rev]
        self._twist: Optional[np.ndarray] = None
        self._untwist: Optional[np.ndarray] = None
        if self.native:
            self._psi_rev_shoup = _shoup_table(self._psi_rev, modulus)
            self._psi_inv_rev_shoup = _shoup_table(self._psi_inv_rev, modulus)
            self._n_inv = _U64(self.degree_inv)
            self._n_inv_shoup = _U64(
                modarith.shoup_precompute(self.degree_inv, modulus)
            )
            self._twist_shoup: Optional[np.ndarray] = None
            self._untwist_shoup: Optional[np.ndarray] = None

    def _power_table(self, base: int) -> np.ndarray:
        table = np.empty(self.degree, dtype=object)
        value = 1
        for i in range(self.degree):
            table[i] = value
            value = value * base % self.modulus
        if self.native:
            return table.astype(_U64)
        return table

    def _check_shape(self, arr: np.ndarray):
        if arr.ndim < 1 or arr.shape[-1] != self.degree:
            raise ValueError(
                f"last axis must have length {self.degree}, got shape {arr.shape}"
            )

    # -- butterfly stages ----------------------------------------------------

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic forward NTT (Cooley-Tukey; composes with
        :meth:`inverse` to the identity).

        Accepts a single coefficient vector or a *batch*: any array whose
        last axis has length ``degree`` -- each stage processes every block
        of every batch row in one vectorised expression (the paper's
        BatchSize dimension costs no extra Python overhead).
        """
        q = self.modulus
        a = modarith.asarray_mod(coeffs, q)
        self._check_shape(a)
        if self.native and a.dtype != object:
            return self._forward_native(np.ascontiguousarray(a))
        return self._forward_object(a)

    def _forward_native(self, a: np.ndarray) -> np.ndarray:
        """Vectorised CT stages: every block of every batch row at once."""
        lead = a.shape[:-1]
        n = self.degree
        q = _U64(self.modulus)
        m, t = 1, n
        while m < n:
            t //= 2
            blocks = a.reshape(lead + (m, 2 * t))
            lo = blocks[..., :t]
            hi = blocks[..., t:]
            w = self._psi_rev[m : 2 * m].reshape((m, 1))
            w_shoup = self._psi_rev_shoup[m : 2 * m].reshape((m, 1))
            v = modarith.shoup_mul_mod(hi, w, w_shoup, q, operand32=self._op32)
            s = lo + v
            d = lo + (q - v)
            blocks[..., :t] = np.where(s >= q, s - q, s)
            blocks[..., t:] = np.where(d >= q, d - q, d)
            m *= 2
        return a

    def _forward_object(self, a: np.ndarray) -> np.ndarray:
        """Reference CT stages on exact Python integers (per-block loop)."""
        q = self.modulus
        t = self.degree
        m = 1
        while m < self.degree:
            t //= 2
            for i in range(m):
                j1 = 2 * i * t
                s = self._psi_rev[m + i]
                lo = a[..., j1 : j1 + t]
                hi = a[..., j1 + t : j1 + 2 * t]
                v = modarith.scalar_mul_mod(hi, int(s), q)
                new_lo = modarith.add_mod(lo, v, q)
                new_hi = modarith.sub_mod(lo, v, q)
                a[..., j1 : j1 + t] = new_lo
                a[..., j1 + t : j1 + 2 * t] = new_hi
            m *= 2
        return a

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Negacyclic inverse NTT (Gentleman-Sande); batches like
        :meth:`forward`."""
        q = self.modulus
        a = modarith.asarray_mod(values, q)
        self._check_shape(a)
        if self.native and a.dtype != object:
            return self._inverse_native(np.ascontiguousarray(a))
        return self._inverse_object(a)

    def _inverse_native(self, a: np.ndarray) -> np.ndarray:
        """Vectorised GS stages: every block of every batch row at once."""
        lead = a.shape[:-1]
        n = self.degree
        q = _U64(self.modulus)
        t, m = 1, n
        while m > 1:
            h = m // 2
            blocks = a.reshape(lead + (h, 2 * t))
            lo = blocks[..., :t]
            hi = blocks[..., t:]
            s = lo + hi
            d = lo + (q - hi)
            diff = np.where(d >= q, d - q, d)
            w = self._psi_inv_rev[h : 2 * h].reshape((h, 1))
            w_shoup = self._psi_inv_rev_shoup[h : 2 * h].reshape((h, 1))
            blocks[..., :t] = np.where(s >= q, s - q, s)
            blocks[..., t:] = modarith.shoup_mul_mod(
                diff, w, w_shoup, q, operand32=self._op32
            )
            t *= 2
            m = h
        return modarith.shoup_mul_mod(
            a, self._n_inv, self._n_inv_shoup, q, operand32=self._op32
        )

    def _inverse_object(self, a: np.ndarray) -> np.ndarray:
        """Reference GS stages on exact Python integers (per-block loop)."""
        q = self.modulus
        t = 1
        m = self.degree
        while m > 1:
            j1 = 0
            h = m // 2
            for i in range(h):
                s = self._psi_inv_rev[h + i]
                lo = a[..., j1 : j1 + t]
                hi = a[..., j1 + t : j1 + 2 * t]
                total = modarith.add_mod(lo, hi, q)
                scaled_diff = modarith.scalar_mul_mod(
                    modarith.sub_mod(lo, hi, q), int(s), q
                )
                a[..., j1 : j1 + t] = total
                a[..., j1 + t : j1 + 2 * t] = scaled_diff
                j1 += 2 * t
            t *= 2
            m = h
        return modarith.scalar_mul_mod(a, self.degree_inv, q)

    # -- psi twisting --------------------------------------------------------

    def _twist_tables(self, inverse: bool):
        if inverse:
            if self._untwist is None:
                self._untwist = self._power_table(self.psi_inv)
                if self.native:
                    self._untwist_shoup = _shoup_table(self._untwist, self.modulus)
            return (
                self._untwist,
                self._untwist_shoup if self.native else None,
            )
        if self._twist is None:
            self._twist = self._power_table(self.psi)
            if self.native:
                self._twist_shoup = _shoup_table(self._twist, self.modulus)
        return self._twist, self._twist_shoup if self.native else None

    def twist(self, coeffs: np.ndarray) -> np.ndarray:
        """Multiply coefficient ``i`` by ``psi**i`` (negacyclic -> cyclic)."""
        a = modarith.asarray_mod(coeffs, self.modulus)
        w, w_shoup = self._twist_tables(inverse=False)
        if self.native and a.dtype != object:
            return modarith.shoup_mul_mod(a, w, w_shoup, _U64(self.modulus))
        return modarith.mul_mod(a, w, self.modulus)

    def untwist(self, coeffs: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`twist` (multiply by ``psi**-i``)."""
        a = modarith.asarray_mod(coeffs, self.modulus)
        w, w_shoup = self._twist_tables(inverse=True)
        if self.native and a.dtype != object:
            return modarith.shoup_mul_mod(a, w, w_shoup, _U64(self.modulus))
        return modarith.mul_mod(a, w, self.modulus)


class NttStack:
    """Batched negacyclic NTT across a whole RNS limb stack.

    Wraps one :class:`NttPlan` per limb and, when every modulus sits on a
    native backend, stacks their twiddle tables into ``(L, N)`` arrays so a
    single sequence of vectorised butterfly stages transforms the entire
    ``(L, ..., N)`` double-CRT tensor.  Mixed or object-backed bases fall
    back to a per-limb loop over the underlying plans (the oracle path).

    Large transforms over sub-``2**31`` moduli additionally run as the
    paper's four-step GEMM NTT (Section 4.4): the twist and bit-reversal
    are folded into two constant ``sqrt(N) x sqrt(N)`` matrices whose
    products run as exact float64 BLAS matmuls over 16-bit operand splits
    -- the CPU analogue of Neo's tensor-core MMA path.  Bit-identical to
    the butterfly stages.
    """

    def __init__(self, degree: int, moduli: Sequence[int]):
        self.degree = degree
        self.moduli = tuple(int(q) for q in moduli)
        self.plans: List[NttPlan] = [get_plan(degree, q) for q in self.moduli]
        self.native = all(plan.native for plan in self.plans)
        self._op32 = self.native and all(q < 2**31 for q in self.moduli)
        self._gemm_fwd = None
        self._gemm_inv = None
        if self.native:
            self._q = np.array(self.moduli, dtype=_U64)
            self._psi_rev = np.stack([p._psi_rev for p in self.plans])
            self._psi_rev_shoup = np.stack([p._psi_rev_shoup for p in self.plans])
            self._psi_inv_rev = np.stack([p._psi_inv_rev for p in self.plans])
            self._psi_inv_rev_shoup = np.stack(
                [p._psi_inv_rev_shoup for p in self.plans]
            )
            self._n_inv = np.array([p._n_inv for p in self.plans], dtype=_U64)
            self._n_inv_shoup = np.array(
                [p._n_inv_shoup for p in self.plans], dtype=_U64
            )

    def _check(self, arr: np.ndarray):
        if arr.ndim < 2 or arr.shape[0] != len(self.moduli):
            raise ValueError(
                f"expected a ({len(self.moduli)}, ..., {self.degree}) stack, "
                f"got shape {arr.shape}"
            )
        if arr.shape[-1] != self.degree:
            raise ValueError(
                f"last axis must have length {self.degree}, got shape {arr.shape}"
            )

    def _cols(self, table: np.ndarray, lo: int, hi: int, ndim: int) -> np.ndarray:
        """Slice stacked per-limb twiddles into a broadcast column block.

        `ndim` is the rank of the blocked view ``(L, batch..., m, t)``; the
        slice lands on the limb and block axes with ones in between.
        """
        L = len(self.moduli)
        return table[:, lo:hi].reshape((L,) + (1,) * (ndim - 3) + (hi - lo, 1))

    def _q_col(self, ndim: int) -> np.ndarray:
        return self._q.reshape((len(self.moduli),) + (1,) * (ndim - 1))

    #: Elements per cache-blocked slab of a batched transform.  Butterfly
    #: stages allocate several working-set-sized temporaries per stage, so
    #: slabs are kept small enough that those temporaries stay cache
    #: resident instead of streaming through memory 2 log2(N) times.
    _BLOCK_ELEMS = 1 << 17

    def forward(self, stack: np.ndarray) -> np.ndarray:
        """Forward NTT of every limb of an ``(L, ..., N)`` stack at once."""
        self._check(stack)
        if not self.native or stack.dtype == object:
            return np.stack(
                [plan.forward(limb) for plan, limb in zip(self.plans, stack)]
            )
        if self._gemm_ok:
            return self._gemm_transform(stack, inverse=False)
        return self._blocked(stack, self._forward_native)

    def _blocked(self, stack: np.ndarray, kernel) -> np.ndarray:
        """Apply `kernel` over cache-sized batch slabs of a big stack."""
        L = len(self.moduli)
        n = self.degree
        batch = int(np.prod(stack.shape[1:-1], dtype=np.int64)) if stack.ndim > 2 else 1
        step = max(1, self._BLOCK_ELEMS // (L * n))
        if batch <= step:
            return kernel(
                stack.copy()
                if stack.flags["C_CONTIGUOUS"]
                else np.ascontiguousarray(stack)
            )
        flat = stack.reshape(L, batch, n)
        out = np.empty((L, batch, n), dtype=_U64)
        for s in range(0, batch, step):
            out[:, s : s + step] = kernel(np.ascontiguousarray(flat[:, s : s + step]))
        return out.reshape(stack.shape)

    # -- four-step GEMM path (Neo Section 4.4 on float64 BLAS) ---------------

    #: Transforms at or above this size route through the GEMM NTT when all
    #: moduli are below ``2**31``; smaller ones keep the butterfly stages
    #: (matmul setup would dominate).  Exposed for tests to override.
    _GEMM_MIN_DEGREE = 1 << 12

    @property
    def _gemm_ok(self) -> bool:
        return self._op32 and self.degree >= self._GEMM_MIN_DEGREE

    @staticmethod
    def _pow_table(base: int, length: int, q: int) -> np.ndarray:
        """``base**i mod q`` for ``i < length`` by vectorised doubling."""
        t = np.empty(length, dtype=_U64)
        t[0] = 1
        filled = 1
        while filled < length:
            step = min(filled, length - filled)
            mult = _U64(pow(base, filled, q))
            t[filled : filled + step] = t[:step] * mult % _U64(q)
            filled += step
        return t

    @staticmethod
    def _shoup_table_fast(values: np.ndarray, q: int) -> np.ndarray:
        """Vectorised ``floor(v * 2**64 / q)`` for ``q < 2**32``."""
        v = values.astype(_U64)
        q64 = _U64(q)
        t1 = v << _U64(32)
        d1 = t1 // q64
        t2 = (t1 - d1 * q64) << _U64(32)
        return (d1 << _U64(32)) + t2 // q64

    @staticmethod
    def _split16(w: np.ndarray):
        """16-bit operand split as float64 triplet ``(hi, lo, hi+lo)``."""
        hi = (w >> _U64(16)).astype(np.float64)
        lo = (w & _U64(0xFFFF)).astype(np.float64)
        return hi, lo, hi + lo

    def _gemm_tables(self, inverse: bool):
        """Constant matrices of the four-step split, twist/bit-rev folded in.

        Forward maps ``x.reshape(a, b)`` through a left ``(a, a)`` matmul,
        an elementwise Shoup twiddle, and a right ``(b, b)`` matmul so the
        flat result *is* the butterfly output: the negacyclic ``psi`` twist
        rides in the matrix entries and the bit-reversal permutes the
        constant rows/columns instead of the data.  The inverse mirrors it
        with ``omega**-1`` powers and ``N**-1 psi**-j`` folded in.
        """
        cached = self._gemm_inv if inverse else self._gemm_fwd
        if cached is not None:
            return cached
        n = self.degree
        half = (n.bit_length() - 1) // 2
        a, b = 1 << half, n >> half
        rev_a = _bit_reverse_permutation(a)
        rev_b = _bit_reverse_permutation(b)
        j1 = np.arange(a)
        j2 = np.arange(b)
        left, tw, right = [], [], []
        for plan in self.plans:
            q = plan.modulus
            omega = plan.psi * plan.psi % q
            if inverse:
                omega = modarith.inv_mod(omega, q)
            pw = self._pow_table(omega, n, q)
            psi = self._pow_table(
                plan.psi_inv if inverse else plan.psi, max(a, b) * b + 1, q
            )
            if inverse:
                # WAI[j1, i1] = psi^{-j1 b} w^{b j1 rev_a(i1)};  left factor
                mat_l = (
                    psi[j1 * b, None] * pw[(b * np.outer(j1, rev_a[j1])) % n]
                ) % _U64(q)
                # TWI[i1, j2] = w^{j2 rev_a(i1)} psi^{-j2} / N
                n_inv = _U64(plan.degree_inv)
                tw_q = (
                    pw[np.outer(rev_a[j1], j2) % n] * psi[j2][None, :] % _U64(q)
                ) * n_inv % _U64(q)
                # WBI[i2, j2] = w^{a rev_b(i2) j2}
                mat_r = pw[(a * np.outer(rev_b[j2], j2)) % n]
            else:
                # WA[r, j1] = psi^{j1 b} w^{b j1 rev_a(r)};  rows r = rev(k1)
                mat_l = (
                    psi[j1 * b][None, :] * pw[(b * np.outer(rev_a[j1], j1)) % n]
                ) % _U64(q)
                # TW[r, j2] = psi^{j2} w^{j2 rev_a(r)}
                tw_q = psi[j2][None, :] * pw[np.outer(rev_a[j1], j2) % n] % _U64(q)
                # WB[j2, c] = w^{a j2 rev_b(c)};  cols c = rev(k2)
                mat_r = pw[(a * np.outer(j2, rev_b[j2])) % n]
            left.append(mat_l)
            tw.append((tw_q, self._shoup_table_fast(tw_q, q)))
            right.append(mat_r)
        L = len(self.moduli)
        # With n-term contractions of unsplit data against the 2**16-weight
        # half of the matrix, float64 sums stay exact iff
        # ``n * (q-1) * (2**16 - 1) < 2**53`` -- then two GEMMs suffice and
        # only the constant matrix is split.  Otherwise the data splits too
        # (three GEMMs, Karatsuba).
        q_max = max(self.moduli)
        tables = {
            "a": a,
            "b": b,
            "left": tuple(
                s[:, None] for s in map(np.stack, zip(*map(self._split16, left)))
            ),
            "right": tuple(
                s[:, None] for s in map(np.stack, zip(*map(self._split16, right)))
            ),
            "left_two": a * (q_max - 1) * ((1 << 16) - 1) < 1 << 53,
            "right_two": b * (q_max - 1) * ((1 << 16) - 1) < 1 << 53,
            "tw": np.stack([t[0] for t in tw])[:, None],
            "tw_shoup": np.stack([t[1] for t in tw])[:, None],
            "q": self._q.reshape(L, 1, 1, 1),
            "c32": np.array(
                [(1 << 32) % q for q in self.moduli], dtype=_U64
            ).reshape(L, 1, 1, 1),
        }
        if inverse:
            self._gemm_inv = tables
        else:
            self._gemm_fwd = tables
        return tables

    def _gemm_mod(
        self, data: np.ndarray, w, t, left: bool, two: bool
    ) -> np.ndarray:
        """Exact modular matmul via float64 GEMMs over 16-bit matrix splits.

        When `two` (small moduli), unsplit data against each matrix half
        stays exact in float64: two GEMMs recombined as
        ``(hh mod q) 2**16 + ll``.  Otherwise the data splits too and a
        Karatsuba third GEMM recovers the cross terms; either way the
        uint64 recombination stays under ``2**63`` before its single
        reduction.
        """
        wh, wl, ws = w
        q = t["q"]
        if two:
            df = data.astype(np.float64)
            hh = (wh @ df) if left else (df @ wh)
            ll = (wl @ df) if left else (df @ wl)
            r = (hh.astype(_U64) % q) << _U64(16)
            r += ll.astype(_U64)
            return r % q
        dh = (data >> _U64(16)).astype(np.float64)
        dl = (data & _U64(0xFFFF)).astype(np.float64)
        if left:
            hh = wh @ dh
            ll = wl @ dl
            mid = ws @ (dh + dl) - hh - ll
        else:
            hh = dh @ wh
            ll = dl @ wl
            mid = (dh + dl) @ ws - hh - ll
        r = (hh.astype(_U64) % q) * t["c32"]
        r += mid.astype(_U64) << _U64(16)
        r += ll.astype(_U64)
        return r % q

    def _gemm_transform(self, stack: np.ndarray, inverse: bool) -> np.ndarray:
        t = self._gemm_tables(inverse)
        a, b = t["a"], t["b"]
        L = len(self.moduli)
        batch = (
            int(np.prod(stack.shape[1:-1], dtype=np.int64)) if stack.ndim > 2 else 1
        )
        x = stack.reshape(L, batch, a, b)
        if inverse:
            x = self._gemm_mod(x, t["right"], t, left=False, two=t["right_two"])
            x = modarith.shoup_mul_mod(
                x, t["tw"], t["tw_shoup"], t["q"], operand32=True
            )
            x = self._gemm_mod(x, t["left"], t, left=True, two=t["left_two"])
        else:
            x = self._gemm_mod(x, t["left"], t, left=True, two=t["left_two"])
            x = modarith.shoup_mul_mod(
                x, t["tw"], t["tw_shoup"], t["q"], operand32=True
            )
            x = self._gemm_mod(x, t["right"], t, left=False, two=t["right_two"])
        return x.reshape(stack.shape)

    def _forward_native(self, a: np.ndarray) -> np.ndarray:
        lead = a.shape[:-1]
        n = self.degree
        q = self._q_col(a.ndim + 1)
        m, t = 1, n
        while m < n:
            t //= 2
            blocks = a.reshape(lead + (m, 2 * t))
            lo = blocks[..., :t]
            hi = blocks[..., t:]
            w = self._cols(self._psi_rev, m, 2 * m, blocks.ndim)
            w_shoup = self._cols(self._psi_rev_shoup, m, 2 * m, blocks.ndim)
            v = modarith.shoup_mul_mod(hi, w, w_shoup, q, operand32=self._op32)
            s = lo + v
            d = lo + (q - v)
            blocks[..., :t] = np.where(s >= q, s - q, s)
            blocks[..., t:] = np.where(d >= q, d - q, d)
            m *= 2
        return a

    def inverse(self, stack: np.ndarray) -> np.ndarray:
        """Inverse NTT of every limb of an ``(L, ..., N)`` stack at once."""
        self._check(stack)
        if not self.native or stack.dtype == object:
            return np.stack(
                [plan.inverse(limb) for plan, limb in zip(self.plans, stack)]
            )
        if self._gemm_ok:
            return self._gemm_transform(stack, inverse=True)
        return self._blocked(stack, self._inverse_native)

    def _inverse_native(self, a: np.ndarray) -> np.ndarray:
        lead = a.shape[:-1]
        n = self.degree
        q = self._q_col(a.ndim + 1)
        t, m = 1, n
        while m > 1:
            h = m // 2
            blocks = a.reshape(lead + (h, 2 * t))
            lo = blocks[..., :t]
            hi = blocks[..., t:]
            s = lo + hi
            d = lo + (q - hi)
            diff = np.where(d >= q, d - q, d)
            w = self._cols(self._psi_inv_rev, h, 2 * h, blocks.ndim)
            w_shoup = self._cols(self._psi_inv_rev_shoup, h, 2 * h, blocks.ndim)
            blocks[..., :t] = np.where(s >= q, s - q, s)
            blocks[..., t:] = modarith.shoup_mul_mod(
                diff, w, w_shoup, q, operand32=self._op32
            )
            t *= 2
            m = h
        L = len(self.moduli)
        col = (L,) + (1,) * (a.ndim - 1)
        return modarith.shoup_mul_mod(
            a,
            self._n_inv.reshape(col),
            self._n_inv_shoup.reshape(col),
            self._q_col(a.ndim),
            operand32=self._op32,
        )


# ---------------------------------------------------------------------------
# Bounded LRU plan cache (the trace-cache discipline, local to the math layer)
# ---------------------------------------------------------------------------


#: The unified cache-counters type (one vocabulary for every cache in the
#: process); the old per-module name is kept as an alias.
PlanCacheStats = CacheStats


class PlanCache:
    """An LRU-bounded memo of constructed transform plans.

    Twiddle tables are a few megabytes at bootstrapping degrees, and a
    long-lived service cycling through parameter sets must not grow its
    plan memo without bound -- the same reasoning as
    :class:`repro.core.trace_cache.TraceCache`, which this mirrors
    (``math`` cannot import ``core``).
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._stats = PlanCacheStats()
        self._lock = threading.RLock()

    def get_or_build(
        self,
        key: Tuple,
        builder: Callable[[], object],
        build_outside_lock: bool = False,
    ):
        """Return the cached entry for `key`, building it on a miss.

        With ``build_outside_lock`` the lock guards only the LRU bookkeeping
        (lookup, insert, evict) and `builder` runs unlocked -- concurrent
        misses may build twice, but the first insert wins and every caller
        gets the winning entry.  Use it when building is expensive (key
        decomposition, weight tensors) so other lanes are never stalled
        behind a build.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return cached
            self._stats.misses += 1
            if not build_outside_lock:
                plan = builder()
                self._insert(key, plan)
                return plan
        plan = builder()
        with self._lock:
            winner = self._entries.get(key)
            if winner is not None:
                return winner  # a concurrent build landed first
            self._insert(key, plan)
            return plan

    def _insert(self, key: Tuple, plan: object) -> None:
        """Insert under the held lock, evicting LRU entries past maxsize."""
        if self.maxsize > 0:
            self._entries[key] = plan
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stats = PlanCacheStats()

    @property
    def stats(self) -> PlanCacheStats:
        with self._lock:
            return self._stats.snapshot()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries


_PLAN_CACHE = PlanCache(maxsize=256)
_STACK_CACHE = PlanCache(maxsize=64)

register_cache("ntt_plans", lambda: _PLAN_CACHE.stats, lambda: len(_PLAN_CACHE))
register_cache("ntt_stacks", lambda: _STACK_CACHE.stats,
               lambda: len(_STACK_CACHE))


def get_plan(degree: int, modulus: int) -> NttPlan:
    """Return the cached :class:`NttPlan` for ``(degree, modulus)``.

    The backend kind is part of the key, so plans requested under
    :func:`modarith.object_backend` never alias the native ones.
    """
    key = (degree, modulus, modarith.backend_kind(modulus))
    return _PLAN_CACHE.get_or_build(key, lambda: NttPlan(degree, modulus))


def get_stack(degree: int, moduli: Sequence[int]) -> NttStack:
    """Return the cached :class:`NttStack` for ``(degree, moduli)``."""
    moduli = tuple(int(q) for q in moduli)
    key = (degree, moduli, tuple(modarith.backend_kind(q) for q in moduli))
    return _STACK_CACHE.get_or_build(key, lambda: NttStack(degree, moduli))


def clear_plan_cache() -> None:
    """Drop every cached plan/stack and reset the counters."""
    _PLAN_CACHE.clear()
    _STACK_CACHE.clear()


def plan_cache_stats() -> Dict[str, Dict[str, float]]:
    """Point-in-time counters for the plan and stack caches."""
    return {
        "plans": _PLAN_CACHE.stats.as_dict(),
        "stacks": _STACK_CACHE.stats.as_dict(),
    }


# ---------------------------------------------------------------------------
# Matrix-multiplication NTT formulations (the forms Neo maps onto TCUs)
# ---------------------------------------------------------------------------


def dft_matrix(size: int, root: int, modulus: int) -> np.ndarray:
    """The `size` x `size` DFT matrix ``W[j, k] = root**(j*k) mod modulus``."""
    exponents = np.outer(np.arange(size), np.arange(size)) % size
    flat = np.array(
        [pow(root, int(e), modulus) for e in exponents.ravel()], dtype=object
    ).reshape(size, size)
    if modarith.uses_native_backend(modulus):
        return flat.astype(_U64)
    return flat


def cyclic_dft(coeffs: np.ndarray, modulus: int, root: int) -> np.ndarray:
    """Dense (O(n^2)) cyclic DFT; ground truth for the fast decompositions."""
    w = dft_matrix(len(coeffs), root, modulus)
    return modarith.matmul_mod(w, modarith.asarray_mod(coeffs, modulus), modulus)


def multi_step_ntt(
    coeffs: np.ndarray,
    modulus: int,
    root: int,
    factors: Sequence[int],
    gemm=None,
) -> np.ndarray:
    """Cyclic DFT of ``len(coeffs)`` via recursive Cooley-Tukey GEMM steps.

    ``factors`` is the radix decomposition of the transform size: ``(n1, n2)``
    gives the paper's four-step NTT; ``(16, 16, 16, 16)`` at ``N = 2**16``
    gives the Radix-16 ("ten-step") NTT of Section 4.4.  Every butterfly
    stage is expressed as a modular GEMM so that a tensor-core GEMM emulation
    can be injected through ``gemm`` (defaults to the exact integer GEMM).

    Output is in natural (not bit-reversed) order.
    """
    n = len(coeffs)
    if int(np.prod(factors)) != n:
        raise ValueError(f"factors {tuple(factors)} do not multiply to {n}")
    if gemm is None:
        gemm = modarith.matmul_mod
    x = modarith.asarray_mod(coeffs, modulus)
    return _ct_recursive(x, modulus, root, list(factors), gemm)


def _ct_recursive(x, modulus, root, factors, gemm):
    """Recursive Cooley-Tukey split X = DFT_a combined with DFT_b blocks."""
    n = len(x)
    if len(factors) == 1:
        w = dft_matrix(n, root, modulus)
        return gemm(w, x.reshape(n, 1), modulus).reshape(n)
    a = factors[0]
    b = n // a
    # x[j] with j = j1*b + j2  ->  M[j2, j1]
    m = x.reshape(a, b).T.copy()
    # Step 1: DFT of size a along rows:  A[j2, k1] = sum_j1 M[j2, j1] w_a^{j1 k1}
    w_a = dft_matrix(a, modarith.pow_mod(root, b, modulus), modulus)
    stage = gemm(m, w_a, modulus)
    # Step 2: twiddle by root^{j2 * k1}
    twiddle_exp = np.outer(np.arange(b), np.arange(a)) % n
    twiddle = np.array(
        [pow(root, int(e), modulus) for e in twiddle_exp.ravel()], dtype=object
    ).reshape(b, a)
    if modarith.uses_native_backend(modulus):
        twiddle = twiddle.astype(_U64)
        stage = modarith.mul_mod(modarith.asarray_mod(stage, modulus), twiddle, modulus)
    else:
        stage = modarith.mul_mod(stage.astype(object), twiddle, modulus)
    # Step 3: size-b DFT down each column, recursively decomposed.
    root_b = modarith.pow_mod(root, a, modulus)
    columns = []
    for k1 in range(a):
        columns.append(_ct_recursive(stage[:, k1], modulus, root_b, factors[1:], gemm))
    result = np.stack(columns, axis=1)  # result[k2, k1]
    return result.reshape(n)  # X[k1 + a*k2] = result[k2, k1]


def four_step_ntt(coeffs, modulus, root, n1=None, gemm=None):
    """The paper's four-step NTT: one (n1, n2) GEMM split of the cyclic DFT."""
    n = len(coeffs)
    if n1 is None:
        n1 = 1 << ((n.bit_length() - 1) // 2)
    return multi_step_ntt(coeffs, modulus, root, (n1, n // n1), gemm=gemm)


def negacyclic_twist(coeffs: np.ndarray, degree: int, modulus: int) -> np.ndarray:
    """Multiply coefficient ``i`` by ``psi**i``, mapping negacyclic to cyclic."""
    return get_plan(degree, modulus).twist(coeffs)


def negacyclic_untwist(coeffs: np.ndarray, degree: int, modulus: int) -> np.ndarray:
    """Inverse of :func:`negacyclic_twist` (multiply by ``psi**-i``)."""
    return get_plan(degree, modulus).untwist(coeffs)


def negacyclic_ntt_via_gemm(
    coeffs: np.ndarray, modulus: int, factors: Sequence[int], gemm=None
) -> np.ndarray:
    """Negacyclic NTT = psi-twist followed by the GEMM-decomposed cyclic DFT.

    Returns evaluations in natural order: entry ``k`` is the polynomial
    evaluated at ``psi**(2k+1)``.
    """
    degree = len(coeffs)
    plan = get_plan(degree, modulus)
    omega = plan.psi * plan.psi % modulus
    twisted = negacyclic_twist(coeffs, degree, modulus)
    return multi_step_ntt(twisted, modulus, omega, factors, gemm=gemm)


def negacyclic_intt_via_gemm(
    values: np.ndarray, modulus: int, factors: Sequence[int], gemm=None
) -> np.ndarray:
    """Inverse of :func:`negacyclic_ntt_via_gemm`."""
    degree = len(values)
    plan = get_plan(degree, modulus)
    omega_inv = modarith.inv_mod(plan.psi * plan.psi % modulus, modulus)
    spectrum = multi_step_ntt(values, modulus, omega_inv, factors, gemm=gemm)
    scaled = modarith.scalar_mul_mod(spectrum, plan.degree_inv, modulus)
    return negacyclic_untwist(scaled, degree, modulus)


def natural_order_negacyclic(plan: NttPlan, coeffs: np.ndarray) -> np.ndarray:
    """Reference dense negacyclic NTT in natural order (for cross-checks)."""
    degree = plan.degree
    modulus = plan.modulus
    points = [pow(plan.psi, 2 * k + 1, modulus) for k in range(degree)]
    vandermonde_rows: List[np.ndarray] = []
    for point in points:
        row = np.empty(degree, dtype=object)
        value = 1
        for i in range(degree):
            row[i] = value
            value = value * point % modulus
        vandermonde_rows.append(row)
    matrix = np.stack(vandermonde_rows)
    return modarith.matmul_mod(
        matrix, modarith.asarray_mod(coeffs, modulus).astype(object).reshape(-1, 1), modulus
    ).reshape(degree)
