"""Synthetic workload specifications and arrival traces.

A workload is a set of :class:`WorkloadPhase` entries -- ``count`` requests
of one application arriving as a Poisson process at ``rate_hz`` -- merged
into one arrival-ordered request stream.  Arrivals are synthesised from a
seeded generator, so the same (spec, seed) pair always replays the same
trace: the serving benchmarks assert bit-identical schedules on repeated
runs.

Spec strings are comma-separated phases
``app:count:rate[:size[:slo[:tier]]]`` (rate in requests per simulated
second, slo in simulated seconds, tier one of ``batch`` / ``standard`` /
``premium``), e.g. ``helr:60:1.2,packbootstrap:40:0.8:1:0:premium``.  A
few named presets cover the common cases (``mixed``, ``bootstrap``,
``smoke``, ``overload``, ``overload10x``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..apps import APPLICATIONS
from .request import Request, tier_priority


@dataclass(frozen=True)
class WorkloadPhase:
    """``count`` requests of one application at Poisson rate ``rate_hz``."""

    app: str
    count: int
    rate_hz: float
    size: int = 1
    #: Latency SLO override, simulated seconds (0 uses the app default).
    slo_s: float = 0.0
    #: Service tier (``batch`` / ``standard`` / ``premium``) -- sets each
    #: request's admission priority under overload control.
    tier: str = "standard"
    #: Submitting tenant, for per-tenant admission quotas.
    tenant: str = "default"

    def __post_init__(self):
        app = self.app.lower()
        if app not in APPLICATIONS:
            known = ", ".join(sorted(set(APPLICATIONS) - {"bootstrap"}))
            raise ValueError(f"unknown application {self.app!r}; choose from {known}")
        object.__setattr__(self, "app", app)
        if self.count < 1:
            raise ValueError(f"phase count must be >= 1, got {self.count}")
        if self.rate_hz <= 0:
            raise ValueError(f"phase rate must be > 0, got {self.rate_hz}")
        if self.size < 1:
            raise ValueError(f"phase size must be >= 1, got {self.size}")
        # Validates the tier name early (raises on typos).
        tier_priority(self.tier)
        object.__setattr__(self, "tier", self.tier.lower())

    @property
    def priority(self) -> int:
        return tier_priority(self.tier)


#: Named workload presets for the CLI and the benchmarks.
WORKLOAD_PRESETS: Dict[str, Tuple[WorkloadPhase, ...]] = {
    # The acceptance workload: HELR iterations and bootstrappings mixed.
    "mixed": (
        WorkloadPhase("helr", 120, 1.2),
        WorkloadPhase("packbootstrap", 80, 0.8),
    ),
    "bootstrap": (WorkloadPhase("packbootstrap", 100, 1.5),),
    "resnet": (WorkloadPhase("resnet20", 40, 0.05),),
    # Small and fast: CI smoke tests and the demo.
    "smoke": (
        WorkloadPhase("helr", 12, 1.0),
        WorkloadPhase("packbootstrap", 8, 0.5),
    ),
    # The fleet acceptance workload: ~11 req/s against a single device's
    # ~3 req/s saturation throughput -- one modeled A100 provably blows
    # its SLOs (attainment < 50%), four ride it out (see
    # ``benchmarks/test_ext_fleet_scaling.py``).
    "overload": (
        WorkloadPhase("helr", 3960, 6.6),
        WorkloadPhase("packbootstrap", 2640, 4.4),
    ),
    # ~10x a single device's capacity, tiered: a premium minority that an
    # overload-controlled server must keep inside its SLO, a standard
    # middle, and a batch majority that load shedding sacrifices (see
    # ``benchmarks/test_ext_overload_degradation.py``).
    "overload10x": (
        WorkloadPhase("helr", 600, 2.0, tier="premium", tenant="gold"),
        WorkloadPhase("packbootstrap", 900, 3.0, tier="standard", tenant="silver"),
        WorkloadPhase("helr", 7500, 25.0, tier="batch", tenant="bulk"),
    ),
}


def parse_workload_spec(spec: str) -> Tuple[WorkloadPhase, ...]:
    """Parse a workload spec string (or preset name) into phases."""
    name = spec.strip().lower()
    if name in WORKLOAD_PRESETS:
        return WORKLOAD_PRESETS[name]
    phases: List[WorkloadPhase] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) < 3:
            raise ValueError(
                f"workload entry {entry!r} must be "
                "app:count:rate[:size[:slo[:tier]]]"
            )
        try:
            app = parts[0]
            count = int(parts[1])
            rate = float(parts[2])
            size = int(parts[3]) if len(parts) > 3 else 1
            slo = float(parts[4]) if len(parts) > 4 else 0.0
            tier = parts[5] if len(parts) > 5 else "standard"
        except ValueError as exc:
            raise ValueError(f"malformed workload entry {entry!r}: {exc}") from None
        phases.append(
            WorkloadPhase(app, count, rate, size=size, slo_s=slo, tier=tier)
        )
    if not phases:
        known = ", ".join(sorted(WORKLOAD_PRESETS))
        raise ValueError(
            f"empty workload spec {spec!r}; give app:count:rate entries or a "
            f"preset ({known})"
        )
    return tuple(phases)


def synthesize_arrivals(
    phases: Sequence[WorkloadPhase], seed: int = 0
) -> List[Request]:
    """Merge the phases into one arrival-ordered request stream.

    Each phase draws exponential interarrivals from one shared seeded
    generator (consumed in phase order, so the trace is a pure function of
    (phases, seed)).  Request ids are assigned in arrival order.
    """
    rng = np.random.default_rng(seed)
    tagged: List[Tuple[float, int, WorkloadPhase]] = []
    for order, phase in enumerate(phases):
        t = 0.0
        for _ in range(phase.count):
            t += float(rng.exponential(1.0 / phase.rate_hz))
            tagged.append((t, order, phase))
    tagged.sort(key=lambda item: (item[0], item[1]))
    return [
        Request(
            rid=rid,
            app=phase.app,
            size=phase.size,
            arrival_s=arrival,
            slo_s=phase.slo_s,
            tenant=phase.tenant,
            priority=phase.priority,
        )
        for rid, (arrival, _, phase) in enumerate(tagged)
    ]
