"""Span tracing: recording, nesting, trees, exports, the inactive path."""

import json

import pytest

from repro.telemetry.tracing import (
    Span,
    Tracer,
    activate_tracer,
    active_tracer,
    deactivate_tracer,
    span,
)


@pytest.fixture
def tracer():
    return Tracer()


class TestRecordSpan:
    def test_explicit_timestamps_and_ids(self, tracer):
        root = tracer.record_span("req-0", "request", 1.0, 5.0,
                                  category="serving", app="helr")
        child = tracer.record_span("req-0", "queue_wait", 1.0, 2.0,
                                   parent_id=root.span_id)
        assert root.trace_id == "req-0"
        assert root.duration_s == pytest.approx(4.0)
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        assert len(tracer) == 2

    def test_attrs_recorded_raw_and_stringified_on_export(self, tracer):
        s = tracer.record_span("t", "x", 0.0, 1.0, rid=3, ok=True)
        assert dict(s.attrs) == {"rid": 3, "ok": True}
        assert s.attr_dict() == {"rid": "3", "ok": "True"}

    def test_attrs_are_sorted_deterministically(self, tracer):
        s = tracer.record_span("t", "x", 0.0, 1.0, zeta=1, alpha=2)
        assert [k for k, _ in s.attrs] == ["alpha", "zeta"]


class TestContextManagerSpans:
    def test_nesting_through_thread_local_stack(self, tracer):
        with tracer.span("outer", category="bootstrap"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None
        assert outer.start_s <= inner.start_s <= inner.end_s <= outer.end_s

    def test_module_helper_is_noop_when_inactive(self):
        deactivate_tracer()
        ctx = span("anything")
        with ctx:
            pass
        # shared null object: no tracer, no allocation per call site
        assert span("other") is ctx

    def test_module_helper_records_on_active_tracer(self):
        tracer = activate_tracer()
        try:
            with span("stage", category="bootstrap"):
                pass
            assert active_tracer() is tracer
            assert [s.name for s in tracer.spans] == ["stage"]
        finally:
            deactivate_tracer()


class TestTrees:
    def test_span_tree_and_format(self, tracer):
        root = tracer.record_span("req-1", "request", 0.0, 10.0)
        tracer.record_span("req-1", "queue_wait", 0.0, 4.0,
                           parent_id=root.span_id)
        batch = tracer.record_span("req-1", "batch", 4.0, 10.0,
                                   parent_id=root.span_id, bid=7)
        tracer.record_span("req-1", "ntt", 4.0, 6.0, parent_id=batch.span_id,
                           category="kernel")
        roots = tracer.span_tree("req-1")
        assert len(roots) == 1
        names = [c.span.name for c in roots[0].children]
        assert names == ["queue_wait", "batch"]
        text = tracer.format_tree("req-1")
        assert "trace req-1" in text
        assert "- request" in text and "- ntt" in text
        assert "bid=7" in text

    def test_trace_isolation(self, tracer):
        tracer.record_span("a", "x", 0.0, 1.0)
        tracer.record_span("b", "y", 0.0, 1.0)
        assert tracer.trace_ids() == ["a", "b"]
        assert [s.name for s in tracer.spans_for("b")] == ["y"]


class TestExports:
    def test_chrome_trace_shape(self, tracer):
        tracer.record_span("req-0", "request", 1.0, 3.0, app="helr")
        events = json.loads(tracer.to_chrome_trace())["traceEvents"]
        (event,) = events
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(1e6)
        assert event["dur"] == pytest.approx(2e6)
        assert event["args"] == {"app": "helr"}

    def test_jsonl_round_trip(self, tracer):
        root = tracer.record_span("req-0", "request", 0.0, 2.0, rid=0)
        tracer.record_span("req-0", "batch", 1.0, 2.0,
                           parent_id=root.span_id, category="serving")
        clone = Tracer.from_jsonl(tracer.to_jsonl())
        assert len(clone) == 2
        got_root, got_batch = clone.spans
        assert got_root.name == "request"
        assert got_batch.parent_id == got_root.span_id
        # attr values come back as strings (stringified at export)
        assert got_root.attr_dict() == {"rid": "0"}
        # ids keep minting above the imported ones
        fresh = clone.record_span("req-1", "x", 0.0, 1.0)
        assert fresh.span_id > got_batch.span_id

    def test_jsonl_skips_blank_lines(self):
        tracer = Tracer.from_jsonl("\n\n")
        assert len(tracer) == 0

    def test_span_from_jsonable_round_trip(self):
        s = Span("t", 1, None, "n", "c", 0.0, 1.0, (("k", "v"),))
        assert Span.from_jsonable(s.to_jsonable()) == s


class TestLifecycle:
    def test_clear_empties_spans(self, tracer):
        tracer.record_span("t", "x", 0.0, 1.0)
        tracer.clear()
        assert len(tracer) == 0

    def test_trace_id_minting_is_unique(self, tracer):
        assert tracer.new_trace_id() != tracer.new_trace_id()
