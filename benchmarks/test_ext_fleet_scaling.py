"""Extension: fleet-scale serving throughput under an honest interconnect.

One modeled A100 saturates near 3 req/s on the mixed HELR + PackBootstrap
ratio; the ``overload`` workload arrives at ~11 req/s, so a single device
provably cannot hold its SLOs (attainment < 50% -- most requests wait out
their deadline in the queue).  Routing the same trace across 4 modeled
GPUs must ride it out.  Acceptance gates:

* >= 3x throughput at 4 modeled GPUs vs 1 (>= 0.75 scaling efficiency) at
  fixed per-app P95 SLO attainment,
* interconnect bytes reported per kernel class and nonzero only for the
  exchange stages (NTT / INTT all-to-all, BConv digit exchange) -- the
  data-parallel fleet never exchanges mid-kernel, the tensor-parallel one
  does,
* deterministic replay: two fresh fleets fed the same seeded trace
  produce bit-identical fleet timelines.
"""

import pytest

from repro.core.profiling import percentile
from repro.gpu.multi_gpu import EXCHANGE_KERNELS
from repro.serving import (
    Fleet,
    Server,
    parse_workload_spec,
    synthesize_arrivals,
)

WORKLOAD = "overload"  # ~11 req/s vs a single device's ~3 req/s capacity
SEED = 0
GPUS = 4


def _requests():
    return synthesize_arrivals(parse_workload_spec(WORKLOAD), seed=SEED)


def _fleet():
    return Fleet(gpus=GPUS, params="C", policy="bucketed", max_batch=64,
                 max_wait_s=30.0, lanes=2)


@pytest.fixture(scope="module")
def single_report():
    server = Server(params="C", policy="bucketed", max_batch=64,
                    max_wait_s=30.0, lanes=2)
    server.submit_many(_requests())
    return server.drain()


@pytest.fixture(scope="module")
def fleet_report():
    fleet = _fleet()
    fleet.submit_many(_requests())
    return fleet.drain()


def test_single_device_provably_overloaded(single_report):
    """The workload is a real overload: one device misses most SLOs."""
    assert single_report.served == len(_requests())
    assert single_report.slo_attainment < 0.5, (
        f"single-device attainment {single_report.slo_attainment:.1%} -- "
        "the workload no longer overloads one device"
    )


def test_fleet_scales_throughput_3x_at_fixed_slo(single_report, fleet_report):
    assert fleet_report.served == single_report.served
    ratio = fleet_report.throughput_rps / single_report.throughput_rps
    assert ratio >= 3.0, (
        f"fleet {fleet_report.throughput_rps:.3f} req/s is only "
        f"{ratio:.2f}x single-device {single_report.throughput_rps:.3f} req/s"
    )
    efficiency = ratio / GPUS
    assert efficiency >= 0.75, (
        f"scaling efficiency {efficiency:.2f} below 0.75 at {GPUS} GPUs"
    )


def test_fleet_p95_within_slo_per_application(fleet_report):
    per_app = {}
    for record in fleet_report.records:
        per_app.setdefault(record.request.app, []).append(record)
    assert per_app, "no records served"
    for app, records in sorted(per_app.items()):
        p95 = percentile([r.latency_s for r in records], 95)
        slo = records[0].request.slo_s
        assert p95 <= slo, f"{app}: P95 {p95:.1f}s exceeds its {slo:.0f}s SLO"
    assert fleet_report.slo_attainment >= 0.99


def test_interconnect_bytes_per_kernel_class():
    """Exchange traffic is itemised per kernel and lands only on the
    stages whose dataflow mixes limbs."""
    # Data-parallel fleet: requests never span GPUs, so no shard exchange.
    data_parallel = _fleet()
    data_parallel.submit_many(
        synthesize_arrivals(parse_workload_spec("smoke"), seed=SEED)
    )
    assert data_parallel.drain().exchange_bytes == 0.0

    # Tensor-parallel groups shard each batch and pay the exchange stages.
    ganged = Fleet(gpus=4, tensor_parallel=2, max_wait_s=30.0)
    ganged.submit_many(
        synthesize_arrivals(parse_workload_spec("smoke"), seed=SEED)
    )
    table = ganged.drain().exchange_bytes_by_kernel
    movers = {name for name, size in table.items() if size > 0}
    assert movers == EXCHANGE_KERNELS & set(table)
    assert movers >= {"ntt", "intt", "bconv"}
    locals_ = set(table) - EXCHANGE_KERNELS
    assert locals_ and all(table[name] == 0.0 for name in locals_)


def test_fleet_utilization_spread(fleet_report):
    """The router keeps every device busy: no straggler, no idler."""
    utils = [d.utilization for d in fleet_report.devices]
    assert len(utils) == GPUS
    assert min(utils) > 0.5
    assert max(utils) <= 1.0


def test_fleet_replay_is_deterministic():
    """Same seed, two fresh fleets: bit-identical fleet timelines."""
    first = _fleet()
    first.submit_many(_requests())
    first_report = first.drain()
    second = _fleet()
    second.submit_many(_requests())
    second_report = second.drain()
    assert first_report.fingerprint() == second_report.fingerprint()
    assert first_report.latency_summary() == second_report.latency_summary()
    assert [d.report.served for d in first_report.devices] == [
        d.report.served for d in second_report.devices
    ]
