"""Table 7: BConv/IP/NTT kernel throughput, Neo vs TensorFHE (Set B)."""

from repro.analysis.paper_data import TABLE7_SPEEDUPS, TABLE7_THROUGHPUT
from repro.analysis.reporting import format_table

KERNELS = ("bconv", "ip", "ntt")


def _build_table(neo, tfhe):
    return {
        "TensorFHE": {k: tfhe.kernel_throughput(k) for k in KERNELS},
        "Neo": {k: neo.kernel_throughput(k) for k in KERNELS},
    }


def test_table7_kernels(benchmark, neo_b_hybrid, tensorfhe_b):
    table = benchmark(_build_table, neo_b_hybrid, tensorfhe_b)
    rows = []
    for label in ("TensorFHE", "Neo"):
        rows.append(
            [label]
            + [f"{table[label][k]:.0f}" for k in KERNELS]
        )
        rows.append(
            ["  (paper)"]
            + [str(TABLE7_THROUGHPUT[label][k]) for k in KERNELS]
        )
    speedups = {
        k: table["Neo"][k] / table["TensorFHE"][k] for k in KERNELS
    }
    rows.append(["Speedup"] + [f"{speedups[k]:.2f}x" for k in KERNELS])
    rows.append(["  (paper)"] + [f"{TABLE7_SPEEDUPS[k]}x" for k in KERNELS])
    print()
    print(
        format_table(
            ["scheme", "#BConv/s", "#IP/s", "#NTT/s"],
            rows,
            title="Table 7: kernel throughput under Set B "
            "(units: one batched kernel invocation)",
        )
    )
    # --- Shape assertions ----------------------------------------------------
    # Neo wins every kernel; NTT shows the largest gain (paper: 3.74x).
    for k in KERNELS:
        assert speedups[k] > 1.5, f"{k} speedup {speedups[k]:.2f}"
    assert speedups["ntt"] == max(speedups.values())
    # Each speedup is within ~1.6x of the paper's printed factor.
    for k in KERNELS:
        rel = speedups[k] / TABLE7_SPEEDUPS[k]
        assert 0.5 < rel < 1.7, f"{k}: {speedups[k]:.2f} vs paper {TABLE7_SPEEDUPS[k]}"
