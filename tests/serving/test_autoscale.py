"""Autoscaler tests: hysteresis, cooldown, clamps, backlog carryover."""

import pytest

from repro.serving import (
    AutoscalePolicy,
    Fleet,
    OverloadPolicy,
    Request,
    plan_autoscale,
)

#: One GPU retires 100 service-seconds per window in these tests.
CAP = 100.0


def _policy(**kwargs):
    defaults = dict(
        min_gpus=1, max_gpus=8, window_s=100.0,
        scale_up_utilization=0.8, scale_down_utilization=0.3,
        up_windows=2, down_windows=2, cooldown_windows=1, step=1,
    )
    defaults.update(kwargs)
    return AutoscalePolicy(**defaults)


class TestHysteresis:
    def test_one_hot_window_does_not_scale(self):
        trace = plan_autoscale([90.0, 10.0, 10.0], _policy(), 1, CAP)
        assert trace.scale_ups == 0
        assert trace.final_gpus == 1

    def test_sustained_heat_scales_up(self):
        trace = plan_autoscale([90.0, 90.0], _policy(), 1, CAP)
        assert trace.scale_ups == 1
        assert trace.decisions[0].action == "hold"
        assert trace.decisions[1].action == "up"
        assert trace.final_gpus == 2

    def test_sustained_cold_scales_down(self):
        trace = plan_autoscale([10.0, 10.0, 10.0], _policy(), 4, CAP)
        assert trace.scale_downs >= 1
        assert trace.decisions[1].action == "down"
        assert trace.final_gpus < 4

    def test_mid_band_resets_counters(self):
        """hot, mid, hot never fires: the streak must be consecutive."""
        # 50% sits between the 30% down and 80% up thresholds.
        trace = plan_autoscale([90.0, 50.0, 90.0, 50.0], _policy(), 1, CAP)
        assert trace.scale_ups == 0

    def test_cooldown_blocks_consecutive_actions(self):
        trace = plan_autoscale(
            [90.0, 90.0, 180.0, 180.0, 270.0], _policy(), 1, CAP
        )
        actions = [d.action for d in trace.decisions]
        assert actions[1] == "up"
        assert actions[2] == "hold"  # cooldown window
        assert trace.decisions[2].reason == "cooldown"

    def test_flapping_load_does_not_flap_fleet(self):
        """Alternating hot/cold windows produce zero scaling actions."""
        demand = [90.0 if i % 2 == 0 else 10.0 for i in range(12)]
        trace = plan_autoscale(demand, _policy(), 2, CAP)
        assert trace.scale_ups == 0 and trace.scale_downs == 0
        assert trace.final_gpus == 2


class TestClampsAndBacklog:
    def test_never_exceeds_max_gpus(self):
        trace = plan_autoscale([1e6] * 30, _policy(max_gpus=3), 1, CAP)
        assert trace.peak_gpus == 3
        assert all(d.gpus <= 3 for d in trace.decisions)

    def test_never_drops_below_min_gpus(self):
        trace = plan_autoscale([0.0] * 30, _policy(min_gpus=2), 4, CAP)
        assert trace.final_gpus == 2

    def test_start_gpus_clamped_into_band(self):
        trace = plan_autoscale([50.0], _policy(max_gpus=4), 100, CAP)
        assert trace.start_gpus == 4

    def test_backlog_carries_over(self):
        """One huge burst keeps utilization hot until worked off."""
        trace = plan_autoscale([500.0, 0.0, 0.0], _policy(), 1, CAP)
        # Window 1 has zero fresh demand but 400s of backlog: still hot.
        assert trace.decisions[1].utilization > 1.0
        assert trace.decisions[1].action == "up"

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="min_gpus"):
            AutoscalePolicy(min_gpus=5, max_gpus=2)
        with pytest.raises(ValueError, match="scale_down"):
            AutoscalePolicy(
                scale_up_utilization=0.3, scale_down_utilization=0.5
            )
        with pytest.raises(ValueError, match="capacity_per_gpu_s"):
            plan_autoscale([1.0], _policy(), 1, 0.0)

    def test_format_mentions_trajectory(self):
        trace = plan_autoscale([90.0, 90.0], _policy(), 1, CAP)
        text = trace.format()
        assert "1 -> 2 GPU(s)" in text
        assert "scaling decisions" in text


class TestFleetIntegration:
    def test_fleet_plans_from_submitted_trace(self):
        fleet = Fleet(gpus=2, lanes=2)
        # ~40 bootstrap requests in the first 100 s: far beyond two
        # devices' capacity, so the plan must grow the fleet.
        for i in range(40):
            fleet.submit(
                Request(rid=i, app="packbootstrap", arrival_s=float(i * 2))
            )
        trace = fleet.plan_autoscale(
            AutoscalePolicy(window_s=100.0, up_windows=1, max_gpus=8)
        )
        assert trace.start_gpus == 2
        assert trace.scale_ups >= 1
        assert trace.final_gpus > 2

    def test_fleet_overload_passthrough(self):
        fleet = Fleet(
            gpus=2, overload=OverloadPolicy(queue_capacity=4)
        )
        assert all(
            s.overload.queue_capacity == 4 for s in fleet.servers
        )
        for i in range(60):
            fleet.submit(
                Request(rid=i, app="packbootstrap", arrival_s=0.0, priority=0)
            )
        report = fleet.drain()
        assert report.offered == 60
        assert report.shed_count + report.rejected_count > 0
        assert (
            report.served + report.shed_count + report.rejected_count
            + report.cancelled_count == 60
        )
        assert report.peak_pressure > 0.0
