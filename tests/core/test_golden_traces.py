"""Golden-trace regression tests.

The analytic model is deterministic end to end: the same (parameter set,
pipeline config, batch, operation, level) must always produce the same
event list, byte for byte.  These tests freeze that contract in JSON
fixtures under ``tests/fixtures/``:

* ``golden_traces_set_c_l35.json`` -- the full per-kernel event list of
  every Table-6 primitive (plus the KeySwitch it is built from) for
  parameter set C at the top level, serialised via
  :meth:`ExecutionTrace.canonical_json`.
* ``golden_app_digests.json`` -- SHA-256 digests (plus event/launch
  counts) of the Table-5 application traces, which are far too large to
  inline but whose drift matters just as much.

Both the cache-miss path (``TraceCache(maxsize=0)``) and the warm
cache-hit path must reproduce the fixtures byte-identically -- a cache
that returned a near-copy would silently skew every downstream number.

Run ``pytest --update-golden`` after an *intentional* model change to
regenerate the fixtures; the diff then documents exactly what moved.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.core.neo_context import NeoContext
from repro.core.trace_cache import TraceCache
from repro.apps import APPLICATIONS, get_application
from repro.gpu.trace import ExecutionTrace

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "fixtures"
OP_FIXTURE = FIXTURE_DIR / "golden_traces_set_c_l35.json"
APP_FIXTURE = FIXTURE_DIR / "golden_app_digests.json"

PARAM_SET = "C"
LEVEL = 35  # top level of set C
GOLDEN_OPS = ("hmult", "hrotate", "pmult", "hadd", "padd", "rescale", "keyswitch")


def _cold_context() -> NeoContext:
    """Every lookup misses: exercises the from-scratch build path."""
    return NeoContext(PARAM_SET, trace_cache=TraceCache(maxsize=0))


def _warm_context() -> NeoContext:
    return NeoContext(PARAM_SET, trace_cache=TraceCache())


def _op_payload(ctx: NeoContext) -> dict:
    return {
        "params": PARAM_SET,
        "level": LEVEL,
        "batch": ctx.batch,
        "ops": {op: ctx.operation_trace(op, LEVEL).to_jsonable() for op in GOLDEN_OPS},
    }


def _app_payload(ctx: NeoContext) -> dict:
    digests = {}
    for name in sorted(APPLICATIONS):
        trace = ctx.application_trace(get_application(name))
        digests[name] = {
            "sha256": hashlib.sha256(trace.canonical_json().encode("utf-8")).hexdigest(),
            "events": len(trace.events),
            "launches": sum(event.launches for event in trace.events),
        }
    return {"params": PARAM_SET, "batch": ctx.batch, "apps": digests}


def _dump(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def _check_or_update(path: Path, payload: dict, update_golden: bool) -> None:
    text = _dump(payload)
    if update_golden:
        FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"{path} missing -- run `pytest --update-golden` once to create it"
    )
    assert path.read_text() == text, (
        f"{path.name} drifted from the live model; if the change is "
        f"intentional, regenerate with `pytest --update-golden`"
    )


class TestOperationGoldenTraces:
    def test_cache_miss_path_matches_fixture(self, update_golden):
        _check_or_update(OP_FIXTURE, _op_payload(_cold_context()), update_golden)

    def test_cache_hit_path_is_byte_identical(self):
        """A warm hit must replay the exact bytes the miss produced."""
        ctx = _warm_context()
        cold = {op: ctx.operation_trace(op, LEVEL).canonical_json() for op in GOLDEN_OPS}
        before = ctx.cache_stats().hits
        warm = {op: ctx.operation_trace(op, LEVEL).canonical_json() for op in GOLDEN_OPS}
        assert ctx.cache_stats().hits > before, "second pass should hit the cache"
        assert warm == cold
        if OP_FIXTURE.exists():
            golden = json.loads(OP_FIXTURE.read_text())["ops"]
            for op in GOLDEN_OPS:
                assert json.loads(warm[op]) == golden[op], f"{op} hit-path drift"

    def test_fixture_round_trips_through_from_jsonable(self):
        """The fixture is loadable back into live, timeable traces."""
        golden = json.loads(OP_FIXTURE.read_text())
        ctx = _cold_context()
        for op, events in golden["ops"].items():
            trace = ExecutionTrace.from_jsonable(events)
            assert trace.canonical_json() == ctx.operation_trace(op, LEVEL).canonical_json()
            assert trace.serial_time_s(ctx.device) > 0.0


class TestApplicationGoldenDigests:
    def test_app_digests_match_fixture(self, update_golden):
        _check_or_update(APP_FIXTURE, _app_payload(_cold_context()), update_golden)

    def test_digests_identical_cold_vs_warm(self):
        """Cache on/off must not change a single byte of any app trace."""
        assert _app_payload(_cold_context()) == _app_payload(_warm_context())
