"""Overload control: bounded admission, load shedding, and tenant quotas.

Sustained overload is the one regime the simulated-clock server could not
survive before this module: every arrival was queued, the queue grew
without bound, and latency (then memory) went with it.  The overload
controller makes admission an explicit decision with three outcomes:

* **admitted** -- the request enters the bounded queue and *will* be
  served (admitted requests are never silently dropped; they can only
  leave the queue by dispatching, by an explicit cancellation, or by a
  priority eviction, each of which is accounted).
* **shed** -- dropped by *policy*: low-priority arrivals are turned away
  once queue pressure crosses ``shed_threshold`` (load shedding keeps
  headroom for the premium tiers), and queued low-priority requests may
  be evicted when a higher-priority arrival finds the queue full.
* **rejected** -- dropped by *necessity*: the queue is at capacity with
  no lower-priority victim, or the tenant is over its admission quota.

Every offered request lands in exactly one bucket, so
``admitted + shed + rejected == offered`` is an invariant the property
suite checks (:mod:`tests.serving.test_overload_properties`).  Queue
pressure is exposed as a backpressure signal for ingest front ends
(:class:`~repro.serving.async_frontend.AsyncFrontEnd` maps it to
``await``-side blocking) and as a ``serving_queue_pressure_peak`` gauge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, NamedTuple, Optional

from .queue import QueueFull, RequestQueue
from .request import Request

#: Admission outcomes (also the keys of the ledger counters).
ADMITTED = "admitted"
SHED = "shed"
REJECTED = "rejected"

#: Shed / reject reasons.
REASON_PRESSURE = "pressure"
REASON_EVICTED = "evicted"
REASON_QUEUE_FULL = "queue-full"
REASON_TENANT_QUOTA = "tenant-quota"


@dataclass(frozen=True)
class OverloadPolicy:
    """Knobs of the admission controller.

    Args:
        queue_capacity: hard bound on pending requests (the backstop that
            replaces the latent unbounded-queue behaviour).
        shed_threshold: queue-fill fraction at which load shedding of
            low-priority arrivals begins (1.0 disables pressure shedding;
            the capacity bound still applies).
        shed_below_priority: arrivals with priority strictly below this
            are shed once pressure >= ``shed_threshold``.
        tenant_quota: maximum *queued* requests per tenant; ``None``
            disables quotas.
        evict_lower_priority: when the queue is full, let a
            higher-priority arrival evict the lowest-priority queued
            request (the victim counts as shed) instead of being
            rejected outright.
    """

    queue_capacity: int = 128
    shed_threshold: float = 0.75
    shed_below_priority: int = 1
    tenant_quota: Optional[int] = None
    evict_lower_priority: bool = True

    def __post_init__(self):
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if not 0.0 < self.shed_threshold <= 1.0:
            raise ValueError(
                f"shed_threshold must be in (0, 1], got {self.shed_threshold}"
            )
        if self.shed_below_priority < 0:
            raise ValueError(
                "shed_below_priority must be >= 0, got "
                f"{self.shed_below_priority}"
            )
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ValueError(
                f"tenant_quota must be >= 1, got {self.tenant_quota}"
            )

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "queue_capacity": self.queue_capacity,
            "shed_threshold": self.shed_threshold,
            "shed_below_priority": self.shed_below_priority,
            "tenant_quota": self.tenant_quota,
            "evict_lower_priority": self.evict_lower_priority,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "OverloadPolicy":
        return cls(
            queue_capacity=int(data["queue_capacity"]),
            shed_threshold=float(data["shed_threshold"]),
            shed_below_priority=int(data["shed_below_priority"]),
            tenant_quota=(
                None if data.get("tenant_quota") is None
                else int(data["tenant_quota"])
            ),
            evict_lower_priority=bool(data.get("evict_lower_priority", True)),
        )


class AdmissionDecision(NamedTuple):
    """One arrival's fate: the outcome, why, and any evicted victim."""

    outcome: str
    reason: str
    #: The queued request evicted to make room (outcome ``admitted`` with
    #: reason ``evicted``); ``None`` otherwise.
    victim: Optional[Request] = None


@dataclass
class AdmissionLedger:
    """Conserved admission accounting for one drain."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    rejected: int = 0
    #: outcome reason -> count (e.g. ``shed:pressure``).
    reasons: Dict[str, int] = field(default_factory=dict)

    def count(self, outcome: str, reason: str) -> None:
        self.offered += 1
        if outcome == ADMITTED:
            self.admitted += 1
        elif outcome == SHED:
            self.shed += 1
        else:
            self.rejected += 1
        if reason:
            key = f"{outcome}:{reason}"
            self.reasons[key] = self.reasons.get(key, 0) + 1

    def count_eviction(self) -> None:
        """An admitted request later evicted moves admitted -> shed."""
        self.admitted -= 1
        self.shed += 1
        key = f"{SHED}:{REASON_EVICTED}"
        self.reasons[key] = self.reasons.get(key, 0) + 1

    def as_dict(self) -> Dict[str, int]:
        table = {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "rejected": self.rejected,
        }
        table.update(sorted(self.reasons.items()))
        return table


class AdmissionController:
    """Applies one :class:`OverloadPolicy` to a stream of arrivals.

    The controller never mutates the queue except through the documented
    eviction path; the server owns pushes so its depth samples stay the
    single source of queue metrics.
    """

    def __init__(self, policy: OverloadPolicy):
        self.policy = policy
        self.ledger = AdmissionLedger()
        #: Peak queue pressure observed at admission decisions.
        self.peak_pressure = 0.0

    def admit(
        self, request: Request, queue: RequestQueue, now: float
    ) -> AdmissionDecision:
        """Decide one arrival's fate and (on admission) push it."""
        policy = self.policy
        self.peak_pressure = max(self.peak_pressure, queue.pressure)

        if (
            policy.tenant_quota is not None
            and queue.tenant_depth(request.tenant) >= policy.tenant_quota
        ):
            self.ledger.count(REJECTED, REASON_TENANT_QUOTA)
            return AdmissionDecision(REJECTED, REASON_TENANT_QUOTA)

        if (
            queue.pressure >= policy.shed_threshold
            and request.priority < policy.shed_below_priority
        ):
            self.ledger.count(SHED, REASON_PRESSURE)
            return AdmissionDecision(SHED, REASON_PRESSURE)

        try:
            queue.push(request, now)
        except QueueFull:
            if policy.evict_lower_priority:
                victim = queue.lowest_priority(below=request.priority)
                if victim is not None:
                    queue.pop_rid(victim.rid, now)
                    queue.push(request, now)
                    # The victim moves admitted -> shed; the arrival is a
                    # plain admission (its decision carries the victim).
                    self.ledger.count_eviction()
                    self.ledger.count(ADMITTED, "")
                    return AdmissionDecision(ADMITTED, REASON_EVICTED, victim)
            self.ledger.count(REJECTED, REASON_QUEUE_FULL)
            return AdmissionDecision(REJECTED, REASON_QUEUE_FULL)
        self.ledger.count(ADMITTED, "")
        self.peak_pressure = max(self.peak_pressure, queue.pressure)
        return AdmissionDecision(ADMITTED, "")
