"""Serving telemetry end to end: spans, metrics, linked kernel traces.

Drives real drains with a tracer and an enabled registry and asserts the
acceptance path: every request's trace covers queue -> batch, the batch
span links the per-shape kernel trace (op -> kernel), and the metrics
snapshot carries the queue/batch/cache/noise families.
"""

import pytest

from repro.serving import (
    FixedServiceModel,
    Request,
    Server,
    parse_workload_spec,
    synthesize_arrivals,
)
from repro.telemetry.registry import MetricsRegistry, global_registry
from repro.telemetry.tracing import Tracer, activate_tracer, deactivate_tracer

FLAT = FixedServiceModel(lambda app, size: 10.0)


@pytest.fixture
def registry_on():
    registry = global_registry()
    was_enabled = registry.enabled
    registry.enable()
    registry.reset()
    yield registry
    registry.reset()
    if not was_enabled:
        registry.disable()


class TestRequestSpans:
    def test_fixed_model_trace_covers_queue_and_batch(self):
        tracer = Tracer()
        server = Server(policy="fifo", max_batch=4, max_wait_s=5.0, lanes=1,
                        model=FLAT, tracer=tracer)
        server.submit(Request(rid=0, app="helr", arrival_s=1.0))
        server.drain()
        (root,) = tracer.span_tree("req-0")
        assert root.span.name == "request"
        assert root.span.start_s == 1.0
        names = [c.span.name for c in root.children]
        assert names == ["queue_wait", "batch"]

    def test_neo_model_links_kernel_trace(self):
        tracer = Tracer()
        server = Server(params="C", policy="fifo", max_batch=4,
                        max_wait_s=5.0, lanes=1, tracer=tracer)
        server.submit(Request(rid=0, app="helr"))
        server.drain()
        (root,) = tracer.span_tree("req-0")
        batch = next(c for c in root.children if c.span.name == "batch")
        attrs = batch.span.attr_dict()
        link = attrs["kernel_trace"]
        assert link.startswith("shape-helr-b")
        assert int(attrs["kernels"]) > 0
        kernel_spans = tracer.spans_for(link)
        assert len(kernel_spans) == int(attrs["kernels_traced"]) + 1
        kernels = [s for s in kernel_spans if s.parent_id is not None]
        assert all(s.category == "kernel" for s in kernels)
        resources = {s.attr_dict()["resource"] for s in kernels}
        # the Neo pipeline splits work across TCU and CUDA-core kernels
        assert "tcu" in resources and "cuda" in resources

    def test_kernel_trace_shared_across_same_shape_batches(self):
        tracer = Tracer()
        server = Server(params="C", policy="fifo", max_batch=1,
                        max_wait_s=0.0, lanes=1, tracer=tracer)
        server.submit(Request(rid=0, app="helr"))
        server.submit(Request(rid=1, app="helr", arrival_s=1000.0))
        server.drain()
        links = set()
        for rid in (0, 1):
            (root,) = tracer.span_tree(f"req-{rid}")
            batch = next(c for c in root.children if c.span.name == "batch")
            links.add(batch.span.attr_dict()["kernel_trace"])
        assert len(links) == 1, "same shape -> one shared kernel trace"
        shape_roots = [s for s in tracer.spans_for(links.pop())
                       if s.parent_id is None]
        assert len(shape_roots) == 1, "kernel spans recorded once, not twice"

    def test_no_tracer_records_nothing(self, registry_on):
        deactivate_tracer()
        server = Server(policy="fifo", max_batch=4, max_wait_s=5.0, lanes=1,
                        model=FLAT)
        server.submit(Request(rid=0, app="helr"))
        report = server.drain()
        assert report.served == 1  # drains fine, just no spans anywhere

    def test_falls_back_to_process_tracer(self):
        tracer = activate_tracer()
        try:
            server = Server(policy="fifo", max_batch=4, max_wait_s=5.0,
                            lanes=1, model=FLAT)
            server.submit(Request(rid=0, app="helr"))
            server.drain()
            assert tracer.spans_for("req-0")
        finally:
            deactivate_tracer()


class TestServingMetrics:
    def test_drain_populates_metric_families(self, registry_on):
        phases = parse_workload_spec("smoke")
        requests = synthesize_arrivals(phases, seed=0)
        server = Server(params="C", policy="bucketed", max_batch=64,
                        max_wait_s=30.0, lanes=2)
        server.submit_many(requests)
        report = server.drain()
        names = registry_on.names()
        for family in (
            "serving_requests_total",
            "serving_latency_seconds",
            "serving_queue_wait_seconds",
            "serving_batches_total",
            "serving_batch_size",
            "serving_queue_depth",
            "serving_queue_depth_peak",
            "serving_queue_depth_mean",
            "serving_makespan_seconds",
            "serving_slo_attainment",
            "cache_hits",
            "cache_misses",
            "cache_hit_rate",
            "fhe_noise_budget_bits_modeled",
        ):
            assert family in names, family
        served = sum(
            registry_on.get("serving_requests_total").series().values()
        )
        assert served == report.served
        assert registry_on.get("serving_makespan_seconds").value == (
            pytest.approx(report.makespan_s)
        )

    def test_latency_histogram_counts_match(self, registry_on):
        server = Server(policy="fifo", max_batch=4, max_wait_s=5.0, lanes=1,
                        model=FLAT)
        server.submit_many(Request(rid=i, app="helr") for i in range(3))
        server.drain()
        hist = registry_on.get("serving_latency_seconds")
        (value,) = hist.series().values()
        assert value.count == 3

    def test_disabled_registry_stays_empty(self):
        registry = global_registry()
        registry.reset()
        registry.disable()
        server = Server(policy="fifo", max_batch=4, max_wait_s=5.0, lanes=1,
                        model=FLAT)
        server.submit(Request(rid=0, app="helr"))
        server.drain()
        assert registry.names() == ()


class TestReportCacheSurfaces:
    def test_report_carries_unified_cache_table(self):
        server = Server(params="C", policy="fifo", max_batch=4,
                        max_wait_s=5.0, lanes=1)
        server.submit(Request(rid=0, app="helr"))
        report = server.drain()
        assert "trace_cache" in report.caches
        assert set(report.caches["trace_cache"]) == {
            "hits", "misses", "evictions", "hit_rate"
        }
        assert "cache surfaces" in report.format()
