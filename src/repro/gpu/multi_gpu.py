"""Multi-GPU scaling model with a plan-aware interconnect cost model.

The paper's related work cites HE-Booster's multi-GPU parallelisation with
fine-grained data partitioning, and Cheddar / Theodosian both argue that
off-chip data movement is the first-order cost of FHE acceleration.  This
module extends the single-device cost model to ``G`` devices under *limb
sharding*: each GPU owns ``1/G`` of the RNS limbs of every resident
polynomial, so compute and HBM traffic divide evenly, and only the stages
whose dataflow mixes limbs ever touch the interconnect.

Which stages exchange shards follows from the op plans, not from a uniform
assumption:

* **BConv** (Mod Up / Mod Down / Recover Limbs, Algorithm 2) computes every
  output limb from *all* input limbs -- each GPU produces partial sums for
  every output shard and reduce-scatters them, moving ``(G-1)/G`` of the
  output across the links (the ModUp digit exchange).
* **NTT / INTT** in four-step or radix-16 GEMM form transposes the working
  set between GEMM stages; with sharded operands the transpose is an
  all-to-all that moves ``(G-1)/G`` of the data once per transform.
* **IP**, automorphisms and all element-wise kernels (ModMul, ModAdd,
  Rescale, Mod Down fix-up) are limb-local: after the digit exchange each
  GPU holds exactly the limbs it reads, and evaluation keys are resident
  (replicated, or sharded limb-aligned), so no bytes cross the link.

The old "every kernel redistributes ``(G-1)/G`` of its input" formula is
kept as the ``uniform_exchange`` baseline; the plan-aware model is strictly
cheaper on any real trace (see ``tests/gpu/test_multi_gpu.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .device import A100, DeviceSpec
from .trace import ExecutionTrace


@dataclass(frozen=True)
class Interconnect:
    """GPU-to-GPU link (per-GPU aggregate bandwidth)."""

    name: str
    bandwidth_gbs: float
    latency_us: float

    @property
    def bytes_per_s(self) -> float:
        return self.bandwidth_gbs * 1e9


#: Third-generation NVLink, as on A100 systems (600 GB/s aggregate).
NVLINK3 = Interconnect(name="NVLink3", bandwidth_gbs=600.0, latency_us=5.0)

#: PCIe 4.0 x16 fallback.
PCIE4 = Interconnect(name="PCIe4 x16", bandwidth_gbs=32.0, latency_us=15.0)

#: Kernel classes whose dataflow mixes limbs and therefore exchanges shards
#: under limb partitioning.  Everything else is limb-local.
EXCHANGE_KERNELS = frozenset({"ntt", "intt", "bconv"})

#: Exchange models accepted by :class:`MultiGpuModel`.
EXCHANGE_MODELS = ("plan", "uniform_exchange")

#: Cached G=1 reference times keyed by (device, frozen trace, streams).
#: ``speedup`` / ``scaling_efficiency`` are called repeatedly on the same
#: trace during scaling sweeps; the reference device time never changes.
_SINGLE_TIME_CACHE: Dict[Tuple[DeviceSpec, ExecutionTrace, int], float] = {}
_SINGLE_TIME_CACHE_MAX = 128


def single_gpu_time_s(
    trace: ExecutionTrace, device: DeviceSpec = A100, streams: int = 8
) -> float:
    """Cached single-device reference time of `trace`."""
    key = (device, trace.frozen(), streams)
    cached = _SINGLE_TIME_CACHE.get(key)
    if cached is None:
        if len(_SINGLE_TIME_CACHE) >= _SINGLE_TIME_CACHE_MAX:
            _SINGLE_TIME_CACHE.clear()
        cached = trace.overlapped_time_s(device, streams)
        _SINGLE_TIME_CACHE[key] = cached
    return cached


def clear_single_gpu_time_cache() -> None:
    """Drop the cached G=1 reference times (tests)."""
    _SINGLE_TIME_CACHE.clear()


def single_gpu_time_cache_size() -> int:
    return len(_SINGLE_TIME_CACHE)


class MultiGpuModel:
    """Time a trace across `gpus` limb-sharded devices.

    Model: compute and local memory traffic divide evenly across GPUs.
    Interconnect traffic is priced per kernel from the op plans (`"plan"`,
    the default): only the transpose-like exchange stages (NTT four-step /
    radix-16 all-to-all, BConv reduce-scatter) move ``(G-1)/G`` of their
    working set across the links, plus one synchronisation latency per
    exchanging kernel launch.  The `"uniform_exchange"` baseline keeps the
    old assumption that *every* kernel redistributes ``(G-1)/G`` of its
    input and pays the sync latency.

    Communication overlaps with compute only partially: the makespan is the
    longer of the two plus ``(1 - overlap)`` of the shorter (``overlap``
    defaults to 0.5 -- half the shorter side is hidden).
    """

    def __init__(
        self,
        gpus: int,
        device: DeviceSpec = A100,
        interconnect: Interconnect = NVLINK3,
        exchange: str = "plan",
        overlap: float = 0.5,
    ):
        if gpus < 1:
            raise ValueError("need at least one GPU")
        if exchange not in EXCHANGE_MODELS:
            raise ValueError(
                f"unknown exchange model {exchange!r}; "
                f"choose from {', '.join(EXCHANGE_MODELS)}"
            )
        if not 0.0 <= overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1], got {overlap}")
        self.gpus = gpus
        self.device = device
        self.interconnect = interconnect
        self.exchange = exchange
        self.overlap = overlap

    # -- interconnect traffic -----------------------------------------------------

    def _event_exchange_bytes(self, event) -> float:
        """Total link bytes (summed over all GPUs) one kernel exchanges."""
        if self.gpus == 1:
            return 0.0
        share = (self.gpus - 1) / self.gpus
        if self.exchange == "uniform_exchange":
            return event.bytes_read * share
        name = event.name.lower()
        if name not in EXCHANGE_KERNELS:
            return 0.0
        # The all-to-all / reduce-scatter moves the kernel's output working
        # set once; bytes_written is that working set (for the NTT it equals
        # the input: the transform is in place size-wise).
        return event.bytes_written * share

    def exchange_bytes_by_kernel(self, trace: ExecutionTrace) -> Dict[str, float]:
        """Total interconnect bytes per kernel name (zero for local stages)."""
        table: Dict[str, float] = {}
        for event in trace.events:
            name = event.name.lower()
            table[name] = table.get(name, 0.0) + self._event_exchange_bytes(event)
        return table

    def exchange_bytes(self, trace: ExecutionTrace) -> float:
        """Total interconnect bytes of `trace` summed over all GPUs."""
        return sum(self.exchange_bytes_by_kernel(trace).values())

    def _sync_launches(self, trace: ExecutionTrace) -> float:
        """Kernel launches that carry an interconnect synchronisation."""
        if self.exchange == "uniform_exchange":
            return sum(e.launches for e in trace.events)
        return sum(
            e.launches
            for e in trace.events
            if e.name.lower() in EXCHANGE_KERNELS
        )

    def comm_time_s(self, trace: ExecutionTrace) -> float:
        """Wall time of the interconnect phase of `trace`.

        All GPUs exchange concurrently over their own links, so the wall
        time is the per-GPU share of the traffic over the per-GPU link
        bandwidth, plus one link latency per synchronising launch.
        """
        if self.gpus == 1:
            return 0.0
        per_gpu_bytes = self.exchange_bytes(trace) / self.gpus
        return (
            per_gpu_bytes / self.interconnect.bytes_per_s
            + self._sync_launches(trace) * self.interconnect.latency_us * 1e-6
        )

    # -- timing -------------------------------------------------------------------

    def time_s(self, trace: ExecutionTrace, streams: int = 8) -> float:
        """Wall time of `trace` on the multi-GPU system."""
        if self.gpus == 1:
            return single_gpu_time_s(trace, self.device, streams)
        shard = trace.scaled(1.0 / self.gpus)
        compute = shard.overlapped_time_s(self.device, streams)
        comm = self.comm_time_s(trace)
        longer, shorter = max(compute, comm), min(compute, comm)
        return longer + (1.0 - self.overlap) * shorter

    def speedup(self, trace: ExecutionTrace, streams: int = 8) -> float:
        """Speedup of `gpus` devices over one (cached G=1 reference)."""
        single = single_gpu_time_s(trace, self.device, streams)
        return single / self.time_s(trace, streams)

    def scaling_efficiency(self, trace: ExecutionTrace, streams: int = 8) -> float:
        """``speedup / gpus`` -- 1.0 is perfect linear scaling."""
        return self.speedup(trace, streams) / self.gpus
