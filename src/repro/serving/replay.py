"""Traffic snapshot / replay: capture a serving timeline, replay it bit-for-bit.

A :class:`TimelineSnapshot` is everything needed to reproduce one drain:
the server's constructor knobs (its ``snapshot_config``), every submitted
request, every scheduled cancellation, and the SHA-256 timeline
fingerprint the original run produced.  The wire format is JSONL with
sorted keys and fixed separators, so identical snapshots are *byte*
identical -- a snapshot re-captured from its own replay round-trips to the
same bytes, which the regression suite asserts
(:mod:`tests.serving.test_replay`).

The file layout is one JSON object per line::

    {"kind": "snapshot", "version": 1, "server": {...}}   # header
    {"kind": "request", "rid": 0, ...}                     # one per request
    {"kind": "cancel", "rid": 3, "at_s": 12.0}             # one per cancel
    {"kind": "footer", "requests": N, "cancels": M, "fingerprint": "..."}

Because the simulated-clock server is a pure function of its submitted
trace, ``replay`` rebuilds the server from the header, re-submits the
body, drains, and ``verify`` checks the fresh fingerprint against the
footer -- the golden-trace discipline applied to whole serving timelines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .overload import OverloadPolicy
from .request import Request
from .server import Server, ServingReport

SNAPSHOT_KIND = "snapshot"
SNAPSHOT_VERSION = 1

#: Request fields serialised per line (in this order, then key-sorted).
_REQUEST_FIELDS = (
    "rid", "app", "size", "arrival_s", "slo_s", "tenant", "priority",
)


class SnapshotError(ValueError):
    """A snapshot file is malformed or fails verification."""


def _dumps(obj: Dict[str, object]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class TimelineSnapshot:
    """One captured serving timeline: config, traffic, and fingerprint."""

    server_config: Dict[str, object]
    requests: List[Request] = field(default_factory=list)
    #: (rid, at_s) scheduled cancellations, sorted for byte stability.
    cancels: List[Tuple[int, float]] = field(default_factory=list)
    fingerprint: str = ""

    # -- capture ------------------------------------------------------------------

    @classmethod
    def capture(
        cls, server: Server, report: Optional[ServingReport] = None
    ) -> "TimelineSnapshot":
        """Snapshot a server's submitted traffic (post- or pre-drain).

        The fingerprint comes from `report` (or the server's last drain);
        capturing before any drain leaves it empty, and ``verify`` on a
        fingerprint-less snapshot only checks the replay is internally
        reproducible.
        """
        report = report if report is not None else server.last_report
        return cls(
            server_config=dict(server.snapshot_config),
            requests=sorted(
                server._submitted, key=lambda r: (r.arrival_s, r.rid)
            ),
            cancels=sorted(server._cancels.items()),
            fingerprint=report.fingerprint() if report is not None else "",
        )

    # -- serialisation ------------------------------------------------------------

    def dumps(self) -> str:
        lines = [
            _dumps(
                {
                    "kind": SNAPSHOT_KIND,
                    "version": SNAPSHOT_VERSION,
                    "server": self.server_config,
                }
            )
        ]
        for request in self.requests:
            row = {"kind": "request"}
            for name in _REQUEST_FIELDS:
                row[name] = getattr(request, name)
            lines.append(_dumps(row))
        for rid, at_s in self.cancels:
            lines.append(_dumps({"kind": "cancel", "rid": rid, "at_s": at_s}))
        lines.append(
            _dumps(
                {
                    "kind": "footer",
                    "requests": len(self.requests),
                    "cancels": len(self.cancels),
                    "fingerprint": self.fingerprint,
                }
            )
        )
        return "\n".join(lines) + "\n"

    def dump(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps())
        return path

    @classmethod
    def loads(cls, text: str) -> "TimelineSnapshot":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise SnapshotError("empty snapshot")
        header = json.loads(lines[0])
        if header.get("kind") != SNAPSHOT_KIND:
            raise SnapshotError(
                f"not a serving snapshot (header kind {header.get('kind')!r})"
            )
        if header.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"unsupported snapshot version {header.get('version')!r}"
            )
        snapshot = cls(server_config=dict(header["server"]))
        footer: Optional[Dict[str, object]] = None
        for line in lines[1:]:
            row = json.loads(line)
            kind = row.get("kind")
            if kind == "request":
                snapshot.requests.append(
                    Request(**{k: row[k] for k in _REQUEST_FIELDS})
                )
            elif kind == "cancel":
                snapshot.cancels.append((int(row["rid"]), float(row["at_s"])))
            elif kind == "footer":
                footer = row
            else:
                raise SnapshotError(f"unknown snapshot row kind {kind!r}")
        if footer is not None:
            if footer.get("requests") != len(snapshot.requests):
                raise SnapshotError(
                    f"footer claims {footer.get('requests')} requests, "
                    f"file holds {len(snapshot.requests)}"
                )
            if footer.get("cancels") != len(snapshot.cancels):
                raise SnapshotError(
                    f"footer claims {footer.get('cancels')} cancels, "
                    f"file holds {len(snapshot.cancels)}"
                )
            snapshot.fingerprint = str(footer.get("fingerprint", ""))
        return snapshot

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TimelineSnapshot":
        return cls.loads(Path(path).read_text())

    # -- replay -------------------------------------------------------------------

    def build_server(self, **overrides) -> Server:
        """A fresh server with the captured constructor knobs."""
        config = self.server_config
        overload = config.get("overload")
        kwargs = {
            "params": config.get("params", "C"),
            "policy": config.get("policy", "fifo"),
            "max_batch": int(config.get("max_batch", 64)),
            "max_wait_s": float(config.get("max_wait_s", 30.0)),
            "lanes": int(config.get("lanes", 2)),
            "overload": (
                OverloadPolicy.from_jsonable(overload) if overload else None
            ),
        }
        kwargs.update(overrides)
        return Server(**kwargs)

    def replay(self, **overrides) -> Tuple[Server, ServingReport]:
        """Rebuild the server, resubmit the traffic, drain."""
        server = self.build_server(**overrides)
        for request in self.requests:
            server.submit(request)
        for rid, at_s in self.cancels:
            server.cancel(rid, at_s)
        return server, server.drain()

    def verify(self, **overrides) -> ServingReport:
        """Replay and assert the timeline fingerprint matches the capture.

        Raises :class:`SnapshotError` on mismatch; an empty captured
        fingerprint (pre-drain capture) only checks replay determinism
        (two fresh replays agree with each other).
        """
        _, report = self.replay(**overrides)
        fresh = report.fingerprint()
        if self.fingerprint:
            if fresh != self.fingerprint:
                raise SnapshotError(
                    "replay fingerprint mismatch: captured "
                    f"{self.fingerprint[:12]}.., replayed {fresh[:12]}.."
                )
        else:
            _, again = self.replay(**overrides)
            if again.fingerprint() != fresh:
                raise SnapshotError(
                    "replay is non-deterministic: two fresh replays disagree"
                )
        return report


def capture_timeline(
    server: Server,
    path: Union[str, Path],
    report: Optional[ServingReport] = None,
) -> Path:
    """Capture `server`'s traffic (and fingerprint) to a snapshot file."""
    return TimelineSnapshot.capture(server, report).dump(path)


def replay_timeline(
    path: Union[str, Path], verify: bool = True, **overrides
) -> ServingReport:
    """Load a snapshot and replay it; verifies the fingerprint by default."""
    snapshot = TimelineSnapshot.load(path)
    if verify:
        return snapshot.verify(**overrides)
    _, report = snapshot.replay(**overrides)
    return report
