"""Batched execution: many messages through one set of homomorphic calls.

The paper processes BatchSize = 128 ciphertexts per kernel launch.  This
example runs a small encrypted scoring pipeline (weighted sum + squaring)
over a batch of ciphertexts with *one* sequence of evaluator calls, then
verifies every row.

Run:  python examples/batched_inference.py
"""

import numpy as np

from repro.ckks import (
    CkksEncoder,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    batched,
    small_test_parameters,
)


def main():
    params = small_test_parameters(degree=64, max_level=5, wordsize=25, dnum=3)
    gen = KeyGenerator(params, seed=31)
    secret = gen.secret_key()
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(secret), seed=7)
    decryptor = Decryptor(params, secret)
    evaluator = Evaluator(
        params,
        relin_key=gen.relinearisation_key(secret),
        galois_keys=gen.rotation_keys(secret, [1, 2]),
    )

    batch = 8
    rng = np.random.default_rng(0)
    rows = rng.uniform(-0.8, 0.8, size=(batch, params.slots))
    weights = rng.uniform(-1, 1, size=params.slots)

    ct = batched.encrypt_batch(encryptor, encoder, rows)
    print(f"one batched ciphertext carries {batched.batch_size(ct)} messages")

    # One PMULT + one HMULT + one HROTATE serve the whole batch.
    weighted = evaluator.rescale(
        evaluator.multiply_plain(ct, encoder.encode(weights))
    )
    squared = evaluator.rescale(evaluator.multiply(weighted, weighted))
    shifted = evaluator.rotate(squared, 1)

    got = batched.decrypt_batch(decryptor, encoder, shifted).real
    want = np.roll((rows * weights) ** 2, -1, axis=1)
    err = np.abs(got - want).max()
    print(f"batched pipeline error across all {batch} rows: {err:.2e}")
    assert err < 1e-2
    print("OK: every message in the batch came out correct")


if __name__ == "__main__":
    main()
