"""Snapshot/replay regression tests: byte-identical timelines.

The golden fixture ``tests/fixtures/overload_timeline.jsonl`` freezes one
overload-heavy traffic capture (requests, cancels, overload policy,
fingerprint).  The tests assert the golden-trace discipline end to end:

* serialisation is **byte-stable** -- capturing the same traffic twice,
  or round-tripping through ``loads``/``dumps``, produces identical bytes;
* replay is **fingerprint-faithful** -- replaying the fixture yields the
  captured SHA-256 timeline fingerprint on today's code;
* ``pytest --update-golden`` regenerates the fixture in place.

A drift in the scheduler, the admission controller, or the service model
shows up here as a fingerprint mismatch before it ships.
"""

from pathlib import Path

import pytest

from repro.serving import (
    FixedServiceModel,
    OverloadPolicy,
    Request,
    Server,
    TimelineSnapshot,
    capture_timeline,
    parse_workload_spec,
    replay_timeline,
    synthesize_arrivals,
)
from repro.serving.replay import SnapshotError

FIXTURE = Path(__file__).resolve().parent.parent / "fixtures" / "overload_timeline.jsonl"

#: Fixed seed: the fixture must not follow the suite's --seed option.
FIXTURE_SEED = 7

FLAT = FixedServiceModel(lambda app, size: 10.0)


def _fast_server(**kwargs):
    defaults = dict(
        policy="priority", max_batch=4, max_wait_s=5.0, lanes=1, model=FLAT,
        overload=OverloadPolicy(queue_capacity=6, shed_threshold=0.5),
    )
    defaults.update(kwargs)
    return Server(**defaults)


def _submit_traffic(server, seed=FIXTURE_SEED):
    phases = parse_workload_spec(
        "helr:8:1.0:1:0:premium,packbootstrap:24:3.0:1:0:batch"
    )
    for request in synthesize_arrivals(phases, seed=seed):
        server.submit(request)
    server.cancel(3, at_s=4.0)
    server.cancel(11, at_s=2.5)
    return server


class TestByteStability:
    def test_capture_is_byte_stable(self):
        a = TimelineSnapshot.capture(_submit_traffic(_fast_server()))
        b = TimelineSnapshot.capture(_submit_traffic(_fast_server()))
        assert a.dumps() == b.dumps()

    def test_round_trip_is_byte_identical(self):
        server = _submit_traffic(_fast_server())
        report = server.drain()
        snapshot = TimelineSnapshot.capture(server, report)
        text = snapshot.dumps()
        assert TimelineSnapshot.loads(text).dumps() == text

    def test_recapture_from_replay_is_byte_identical(self):
        """capture -> replay -> capture round-trips to the same bytes."""
        server = _submit_traffic(_fast_server())
        report = server.drain()
        snapshot = TimelineSnapshot.capture(server, report)
        replayed_server, replayed_report = snapshot.replay(model=FLAT)
        again = TimelineSnapshot.capture(replayed_server, replayed_report)
        assert again.dumps() == snapshot.dumps()


class TestReplayFidelity:
    def test_replay_fingerprint_matches(self, tmp_path):
        server = _submit_traffic(_fast_server())
        report = server.drain()
        path = capture_timeline(server, tmp_path / "snap.jsonl", report)
        replayed = replay_timeline(path, model=FLAT)
        assert replayed.fingerprint() == report.fingerprint()
        assert replayed.served == report.served
        assert replayed.shed_count == report.shed_count
        assert replayed.cancelled_count == report.cancelled_count

    def test_tampered_fingerprint_raises(self, tmp_path):
        server = _submit_traffic(_fast_server())
        snapshot = TimelineSnapshot.capture(server, server.drain())
        snapshot.fingerprint = "0" * 64
        path = snapshot.dump(tmp_path / "bad.jsonl")
        with pytest.raises(SnapshotError, match="fingerprint mismatch"):
            replay_timeline(path, model=FLAT)

    def test_pre_drain_capture_verifies_determinism(self):
        snapshot = TimelineSnapshot.capture(_submit_traffic(_fast_server()))
        assert snapshot.fingerprint == ""
        report = snapshot.verify(model=FLAT)
        assert report.served > 0

    def test_snapshot_preserves_tiers_and_tenants(self):
        server = _fast_server()
        server.submit(
            Request(rid=0, app="helr", priority=2, tenant="gold")
        )
        snapshot = TimelineSnapshot.loads(
            TimelineSnapshot.capture(server).dumps()
        )
        assert snapshot.requests[0].priority == 2
        assert snapshot.requests[0].tenant == "gold"

    def test_malformed_snapshots_raise(self):
        with pytest.raises(SnapshotError, match="empty"):
            TimelineSnapshot.loads("")
        with pytest.raises(SnapshotError, match="not a serving snapshot"):
            TimelineSnapshot.loads('{"kind": "nope"}')
        snapshot = TimelineSnapshot.capture(_submit_traffic(_fast_server()))
        lines = snapshot.dumps().splitlines()
        del lines[1]  # drop a request; the footer count now lies
        with pytest.raises(SnapshotError, match="footer claims"):
            TimelineSnapshot.loads("\n".join(lines))


class TestGoldenFixture:
    """The frozen overload timeline (regenerate with --update-golden)."""

    def _golden_server(self):
        # The fixture replays through the real NeoServiceModel, so the
        # capture must run it too (fingerprints cover service times).
        server = Server(
            params="C",
            policy="priority",
            max_batch=8,
            max_wait_s=10.0,
            lanes=2,
            overload=OverloadPolicy(queue_capacity=8, shed_threshold=0.5),
        )
        return _submit_traffic(server)

    def test_golden_overload_timeline(self, update_golden):
        server = self._golden_server()
        report = server.drain()
        snapshot = TimelineSnapshot.capture(server, report)
        payload = snapshot.dumps()
        if update_golden:
            FIXTURE.parent.mkdir(parents=True, exist_ok=True)
            FIXTURE.write_text(payload)
            pytest.skip(f"regenerated {FIXTURE.name}")
        assert FIXTURE.exists(), (
            f"golden fixture {FIXTURE} missing; run pytest --update-golden"
        )
        frozen = FIXTURE.read_text()
        assert payload == frozen, (
            "overload timeline drifted from the golden fixture; inspect the "
            "diff and run pytest --update-golden if the change is intended"
        )

    def test_golden_fixture_replays_byte_identically(self):
        if not FIXTURE.exists():
            pytest.skip("golden fixture not generated yet")
        snapshot = TimelineSnapshot.load(FIXTURE)
        report = snapshot.verify()  # raises on fingerprint mismatch
        replayed_server, _ = snapshot.replay()
        recaptured = TimelineSnapshot.capture(
            replayed_server, replayed_server.last_report
        )
        assert recaptured.dumps() == FIXTURE.read_text()
        assert report.offered == len(snapshot.requests)
