"""Plan-aware interconnect model: exchange accounting, baselines, caching."""

import pytest

from repro.core import NEO_CONFIG, NeoContext
from repro.gpu.device import A100
from repro.gpu.kernels import KernelCost
from repro.gpu.multi_gpu import (
    EXCHANGE_KERNELS,
    NVLINK3,
    Interconnect,
    MultiGpuModel,
    clear_single_gpu_time_cache,
    single_gpu_time_cache_size,
    single_gpu_time_s,
)
from repro.gpu.trace import ExecutionTrace


@pytest.fixture(scope="module")
def hmult_trace():
    return NeoContext("C", config=NEO_CONFIG).operation_trace("hmult", 35)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_single_gpu_time_cache()
    yield
    clear_single_gpu_time_cache()


class TestPlanAwareExchange:
    def test_plan_strictly_cheaper_than_uniform(self, hmult_trace):
        """Regression: pricing only real exchange stages beats the old
        every-kernel-redistributes assumption on any real trace."""
        for gpus in (2, 4, 8):
            plan = MultiGpuModel(gpus, exchange="plan")
            uniform = MultiGpuModel(gpus, exchange="uniform_exchange")
            assert plan.exchange_bytes(hmult_trace) < uniform.exchange_bytes(
                hmult_trace
            )
            assert plan.comm_time_s(hmult_trace) < uniform.comm_time_s(
                hmult_trace
            )
            assert plan.time_s(hmult_trace) < uniform.time_s(hmult_trace)

    def test_only_exchange_stages_move_bytes(self, hmult_trace):
        table = MultiGpuModel(4).exchange_bytes_by_kernel(hmult_trace)
        movers = {name for name, size in table.items() if size > 0}
        assert movers, "an HMULT trace must exchange through NTT/BConv"
        assert movers <= EXCHANGE_KERNELS
        locals_ = set(table) - EXCHANGE_KERNELS
        assert locals_, "an HMULT trace has limb-local stages too"
        assert all(table[name] == 0.0 for name in locals_)

    def test_uniform_matches_seed_formula(self, hmult_trace):
        """The baseline reproduces the old model: (G-1)/G of every kernel's
        input crosses the link, one sync latency per launch."""
        gpus = 4
        model = MultiGpuModel(gpus, exchange="uniform_exchange")
        share = (gpus - 1) / gpus
        expected_bytes = sum(e.bytes_read for e in hmult_trace.events) * share
        assert model.exchange_bytes(hmult_trace) == pytest.approx(expected_bytes)
        launches = sum(e.launches for e in hmult_trace.events)
        expected_comm = (
            expected_bytes / gpus / NVLINK3.bytes_per_s
            + launches * NVLINK3.latency_us * 1e-6
        )
        assert model.comm_time_s(hmult_trace) == pytest.approx(expected_comm)

    def test_exchange_bytes_scale_with_share(self, hmult_trace):
        two = MultiGpuModel(2).exchange_bytes(hmult_trace)
        four = MultiGpuModel(4).exchange_bytes(hmult_trace)
        # (G-1)/G grows with G: 1/2 -> 3/4 of the working set.
        assert four == pytest.approx(two * (3 / 4) / (1 / 2))

    def test_unknown_exchange_model_rejected(self):
        with pytest.raises(ValueError, match="exchange model"):
            MultiGpuModel(2, exchange="telepathy")

    def test_overlap_validated(self):
        with pytest.raises(ValueError, match="overlap"):
            MultiGpuModel(2, overlap=1.5)

    def test_full_overlap_hides_shorter_side(self, hmult_trace):
        full = MultiGpuModel(4, overlap=1.0)
        none = MultiGpuModel(4, overlap=0.0)
        shard = hmult_trace.scaled(1 / 4)
        compute = shard.overlapped_time_s(A100, 8)
        comm = full.comm_time_s(hmult_trace)
        assert full.time_s(hmult_trace) == pytest.approx(max(compute, comm))
        assert none.time_s(hmult_trace) == pytest.approx(compute + comm)


class TestCorners:
    def test_single_gpu_no_exchange(self, hmult_trace):
        model = MultiGpuModel(1)
        assert model.exchange_bytes(hmult_trace) == 0.0
        assert model.comm_time_s(hmult_trace) == 0.0
        assert model.time_s(hmult_trace) == pytest.approx(
            hmult_trace.overlapped_time_s(A100, 8)
        )
        assert model.speedup(hmult_trace) == pytest.approx(1.0)
        assert model.scaling_efficiency(hmult_trace) == pytest.approx(1.0)

    def test_latency_only_corner(self):
        """A byte-free exchange kernel still pays one sync per launch."""
        trace = ExecutionTrace(
            [KernelCost(name="ntt", cuda_flops=1e9, launches=6)]
        ).frozen()
        model = MultiGpuModel(4)
        assert model.exchange_bytes(trace) == 0.0
        assert model.comm_time_s(trace) == pytest.approx(
            6 * NVLINK3.latency_us * 1e-6
        )

    def test_bandwidth_bound_corner(self):
        """With huge exchanged bytes and no overlap, the link is the clock."""
        slow = Interconnect("trickle", bandwidth_gbs=1.0, latency_us=0.0)
        trace = ExecutionTrace(
            [KernelCost(name="bconv", cuda_flops=1.0, bytes_written=4e12,
                        launches=0)]
        ).frozen()
        gpus = 4
        model = MultiGpuModel(gpus, interconnect=slow, overlap=1.0)
        expected = 4e12 * (gpus - 1) / gpus / gpus / slow.bytes_per_s
        assert model.comm_time_s(trace) == pytest.approx(expected)
        assert model.time_s(trace) == pytest.approx(expected, rel=1e-6)

    def test_limb_local_trace_is_free(self):
        """A purely element-wise trace never touches the interconnect."""
        trace = ExecutionTrace(
            [KernelCost(name="modmul", cuda_flops=1e9, bytes_read=1e9,
                        bytes_written=1e9)]
        ).frozen()
        model = MultiGpuModel(8)
        assert model.exchange_bytes(trace) == 0.0
        assert model.comm_time_s(trace) == 0.0


class TestSingleTimeCache:
    def test_speedup_uses_cached_reference(self, hmult_trace):
        model = MultiGpuModel(4)
        assert single_gpu_time_cache_size() == 0
        first = model.speedup(hmult_trace)
        assert single_gpu_time_cache_size() == 1
        # Repeats (and other fleet sizes on the same trace) reuse the entry.
        assert model.speedup(hmult_trace) == first
        MultiGpuModel(8).scaling_efficiency(hmult_trace)
        assert single_gpu_time_cache_size() == 1

    def test_cache_keys_on_streams(self, hmult_trace):
        single_gpu_time_s(hmult_trace, streams=8)
        single_gpu_time_s(hmult_trace, streams=4)
        assert single_gpu_time_cache_size() == 2

    def test_cached_value_matches_direct(self, hmult_trace):
        cached = single_gpu_time_s(hmult_trace)
        assert cached == pytest.approx(hmult_trace.overlapped_time_s(A100, 8))

    def test_clear(self, hmult_trace):
        single_gpu_time_s(hmult_trace)
        assert single_gpu_time_cache_size() == 1
        clear_single_gpu_time_cache()
        assert single_gpu_time_cache_size() == 0
