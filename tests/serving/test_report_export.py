"""ServingReport exports under degenerate workloads (S3).

Chrome-trace export and fingerprinting must hold up on the edges a real
deployment produces: a drain that served nothing, a single request, every
request missing its SLO -- not just the happy mixed workload.
"""

import json

import pytest

from repro.serving import FixedServiceModel, Request, Server, ServingReport

FLAT = FixedServiceModel(lambda app, size: 10.0)


def _drain(requests, **kwargs):
    defaults = dict(policy="fifo", max_batch=4, max_wait_s=5.0, lanes=1,
                    model=FLAT)
    defaults.update(kwargs)
    server = Server(**defaults)
    server.submit_many(requests)
    return server.drain()


class TestEmptyReport:
    def test_empty_drain_yields_empty_but_valid_report(self):
        report = _drain([])
        assert report.served == 0
        assert report.makespan_s == 0.0
        assert report.throughput_rps == 0.0
        assert report.slo_attainment == 1.0
        assert report.mean_batch_size() == 0.0
        assert report.batch_size_histogram() == {}

    def test_empty_chrome_trace_is_valid_json(self):
        report = _drain([])
        events = json.loads(report.to_chrome_trace())["traceEvents"]
        assert events == []

    def test_empty_fingerprint_is_stable(self):
        assert _drain([]).fingerprint() == _drain([]).fingerprint()

    def test_empty_format_renders(self):
        text = _drain([]).format()
        assert "served 0 requests" in text

    def test_default_constructed_report_exports(self):
        report = ServingReport()
        assert json.loads(report.to_chrome_trace())["traceEvents"] == []
        assert isinstance(report.fingerprint(), str)

    def test_empty_latency_summary_is_zeroed(self):
        lat = _drain([]).latency_summary()
        assert lat == {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0,
                       "max": 0.0}


class TestSingleRequest:
    def test_single_request_timeline_has_one_block(self):
        report = _drain([Request(rid=0, app="helr")])
        assert report.served == 1
        (block,) = report.timeline()
        assert block.start_s == 0.0
        assert block.end_s == pytest.approx(10.0)
        events = json.loads(report.to_chrome_trace())["traceEvents"]
        assert len(events) == 1

    def test_single_request_percentiles_collapse_to_sample(self):
        report = _drain([Request(rid=0, app="helr")])
        lat = report.latency_summary()
        assert lat["p50"] == lat["p99"] == lat["max"] == pytest.approx(10.0)


class TestAllRejectedSlo:
    def test_every_request_missing_slo_still_exports(self):
        # service time 10s against an impossible 1s SLO: 0% attainment
        requests = [Request(rid=i, app="helr", arrival_s=0.0, slo_s=1.0)
                    for i in range(4)]
        report = _drain(requests)
        assert report.served == 4
        assert report.slo_violations == 4
        assert report.slo_attainment == 0.0
        assert "0.0% attainment" in report.format()
        events = json.loads(report.to_chrome_trace())["traceEvents"]
        assert events, "violating requests still appear on the timeline"

    def test_fingerprint_distinguishes_schedules(self):
        good = _drain([Request(rid=0, app="helr")])
        other = _drain([Request(rid=0, app="helr"),
                        Request(rid=1, app="helr", arrival_s=50.0)])
        assert good.fingerprint() != other.fingerprint()


class TestDeterminism:
    def test_identical_replays_fingerprint_equal(self):
        requests = [Request(rid=i, app="helr", arrival_s=float(i))
                    for i in range(6)]
        first = _drain(list(requests))
        second = _drain(list(requests))
        assert first.fingerprint() == second.fingerprint()
        assert first.to_chrome_trace() == second.to_chrome_trace()
