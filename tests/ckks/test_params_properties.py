"""Property-based tests on the parameter machinery (Table 1 identities)."""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.ckks.params import KlssConfig, ParameterSet, ceil_div, get_set


@settings(max_examples=100, deadline=None)
@given(
    max_level=st.integers(min_value=1, max_value=60),
    dnum=st.integers(min_value=1, max_value=60),
)
def test_property_alpha_beta_cover_the_chain(max_level, dnum):
    """alpha digits of size beta always cover exactly the l+1 limbs."""
    params = ParameterSet("X", 16, max_level, 36, dnum=dnum, security=128)
    alpha = params.alpha
    for level in range(max_level + 1):
        beta = params.beta(level)
        assert (beta - 1) * alpha < level + 1 <= beta * alpha


@settings(max_examples=100, deadline=None)
@given(
    level=st.integers(min_value=1, max_value=35),
    alpha_tilde=st.integers(min_value=2, max_value=10),
    wordsize_t=st.integers(min_value=30, max_value=64),
)
def test_property_klss_dims_satisfy_eq4(level, alpha_tilde, wordsize_t):
    """alpha' always satisfies the Eq. 4 bit bound it was derived from."""
    cfg = KlssConfig(wordsize_t=wordsize_t, alpha_tilde=alpha_tilde)
    alpha = 4
    alpha_prime = cfg.alpha_prime(level, alpha, wordsize=36, log_degree=16)
    assert alpha_prime >= 1
    # One fewer limb must violate the bound (minimality).
    import math

    beta = ceil_div(level + 1, alpha)
    bound_bits = (
        1 + math.ceil(math.log2(max(beta, 1))) + 1 + 16
        + 36 * alpha + 8 + math.ceil(math.log2(alpha + 1))
        + (36 + 1) * alpha_tilde
    )
    assert alpha_prime * wordsize_t >= bound_bits
    assert (alpha_prime - 1) * wordsize_t < bound_bits


@settings(max_examples=60, deadline=None)
@given(
    level=st.integers(min_value=1, max_value=35),
    alpha_tilde=st.integers(min_value=2, max_value=10),
)
def test_property_beta_tilde_monotone_in_level(level, alpha_tilde):
    cfg = KlssConfig(wordsize_t=48, alpha_tilde=alpha_tilde)
    assert cfg.beta_tilde(level, 4) <= cfg.beta_tilde(level + 1, 4)


@settings(max_examples=40, deadline=None)
@given(wst_small=st.integers(min_value=30, max_value=47))
def test_property_larger_wordsize_t_never_more_limbs(wst_small):
    """Section 3.2: larger WordSize_T -> alpha' can only shrink."""
    small = KlssConfig(wordsize_t=wst_small, alpha_tilde=5)
    large = KlssConfig(wordsize_t=wst_small + 8, alpha_tilde=5)
    assert large.alpha_prime(35, 4, 36, 16) <= small.alpha_prime(35, 4, 36, 16)


@settings(max_examples=30, deadline=None)
@given(dnum=st.integers(min_value=1, max_value=36))
def test_property_digit_ranges_partition(dnum):
    params = dataclasses.replace(get_set("B"), dnum=dnum)
    # Analytic set: emulate digit ranges from alpha/beta.
    level = params.max_level
    alpha = params.alpha
    covered = []
    for j in range(params.beta(level)):
        start = j * alpha
        stop = min(start + alpha, level + 1)
        assert start < stop
        covered.extend(range(start, stop))
    assert covered == list(range(level + 1))
