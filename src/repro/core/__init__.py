"""Neo core: GEMM-form kernels, mapping policy, pipelines, NeoContext."""

from .ablation import ABLATION_STEPS, ablation_configs, ablation_labels
from .autotuner import (
    BUDGETS,
    MODEL_VERSION,
    TunedConfig,
    TuningReport,
    TuningResult,
    TuningStore,
    best_configuration,
    clear_cost_builder_caches,
    default_tuning_store,
    hybrid_vs_best_klss,
    tune_app,
    tune_keyswitch,
)
from .bconv_matmul import NeoBConv, bconv_cost, reference_bconv
from .ip_matmul import NeoInnerProduct, ip_cost, reference_inner_product
from .mapping import (
    CUDA_ONLY_KERNELS,
    IP_TCU_THRESHOLD,
    GemmShape,
    bconv_gemm_shape,
    choose_ip_component,
    ip_gemm_shape,
    neo_component_map,
    ntt_gemm_shape,
)
from .neo_context import NeoContext
from .pipeline import (
    HEONGPU_CONFIG,
    NEO_CONFIG,
    TENSORFHE_CONFIG,
    OperationPipeline,
    PipelineConfig,
)
from .profiling import (
    ApplicationProfile,
    OpProfile,
    chrome_trace_json,
    profile_application,
    profile_schedule,
)
from .radix16_ntt import NeoNtt, ntt_cost, ntt_gemm_macs, radix16_factors
from .streams import ScheduleResult, StreamScheduler
from .trace_cache import (
    GLOBAL_TRACE_CACHE,
    CacheStats,
    TraceCache,
    default_trace_cache,
)

__all__ = [
    "ABLATION_STEPS",
    "ApplicationProfile",
    "BUDGETS",
    "MODEL_VERSION",
    "TunedConfig",
    "TuningReport",
    "TuningStore",
    "CUDA_ONLY_KERNELS",
    "CacheStats",
    "GLOBAL_TRACE_CACHE",
    "GemmShape",
    "HEONGPU_CONFIG",
    "IP_TCU_THRESHOLD",
    "NEO_CONFIG",
    "NeoBConv",
    "NeoContext",
    "NeoInnerProduct",
    "NeoNtt",
    "OpProfile",
    "OperationPipeline",
    "PipelineConfig",
    "ScheduleResult",
    "StreamScheduler",
    "TENSORFHE_CONFIG",
    "TraceCache",
    "TuningResult",
    "ablation_configs",
    "ablation_labels",
    "best_configuration",
    "clear_cost_builder_caches",
    "default_tuning_store",
    "hybrid_vs_best_klss",
    "tune_app",
    "tune_keyswitch",
    "bconv_cost",
    "bconv_gemm_shape",
    "choose_ip_component",
    "chrome_trace_json",
    "default_trace_cache",
    "ip_cost",
    "ip_gemm_shape",
    "neo_component_map",
    "ntt_cost",
    "ntt_gemm_macs",
    "ntt_gemm_shape",
    "profile_application",
    "profile_schedule",
    "radix16_factors",
    "reference_bconv",
    "reference_inner_product",
]
