"""Discrete-event multi-stream scheduler (Section 4.6).

Neo partitions kernels across CUDA streams so that when tensor-core work
in one stream stalls, CUDA-core work from another stream fills the idle
cycles.  :meth:`repro.gpu.trace.ExecutionTrace.overlapped_time_s` models
this with an analytic per-resource bound; this module *simulates* it:
kernels are assigned to streams, streams issue in order, and each kernel
occupies its dominant execution resource (CUDA cores, tensor cores, or
DRAM bandwidth) exclusively for its duration.

The simulated makespan always lies between the analytic lower bound and
the serial time (the test-suite asserts it), and the timeline can be
exported in the Chrome ``chrome://tracing`` JSON format for inspection.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import astuple, dataclass, field
from typing import Dict, List

from ..gpu.device import DeviceSpec
from ..gpu.kernels import KernelCost
from ..gpu.trace import ExecutionTrace


@dataclass(frozen=True)
class ScheduledKernel:
    """One kernel's placement in the simulated timeline."""

    name: str
    stream: int
    resource: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class ScheduleResult:
    """Outcome of a simulation run."""

    makespan_s: float
    timeline: List[ScheduledKernel] = field(default_factory=list)
    resource_busy_s: Dict[str, float] = field(default_factory=dict)

    def utilisation(self) -> Dict[str, float]:
        """Busy fraction of each resource over the makespan."""
        if self.makespan_s <= 0:
            return {r: 0.0 for r in self.resource_busy_s}
        return {
            r: busy / self.makespan_s for r, busy in self.resource_busy_s.items()
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical timeline.

        Two runs with identical inputs produce identical fingerprints
        (floats serialise through ``repr``, which round-trips exactly);
        the serving determinism tests compare these across replays.
        """
        payload = json.dumps([astuple(k) for k in self.timeline])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_chrome_trace(self) -> str:
        """The timeline as a Chrome tracing JSON string."""
        events = []
        for k in self.timeline:
            events.append(
                {
                    "name": k.name,
                    "cat": k.resource,
                    "ph": "X",
                    "ts": k.start_s * 1e6,
                    "dur": k.duration_s * 1e6,
                    "pid": 0,
                    "tid": k.stream,
                }
            )
        return json.dumps({"traceEvents": events})


class StreamScheduler:
    """Simulates issuing a trace across `streams` CUDA streams."""

    RESOURCES = ("cuda", "tcu", "memory")

    def __init__(self, device: DeviceSpec, streams: int = 8):
        if streams < 1:
            raise ValueError("need at least one stream")
        self.device = device
        self.streams = streams

    def _classify(self, cost: KernelCost) -> tuple:
        """(dominant resource, duration) of one kernel."""
        cuda = cost.cuda_flops / self.device.cuda_fp64_flops if cost.cuda_flops else 0.0
        tcu = 0.0
        if cost.tcu_fp64_flops:
            tcu += cost.tcu_fp64_flops / self.device.tcu_fp64_flops
        if cost.tcu_int8_ops:
            tcu += cost.tcu_int8_ops / self.device.tcu_int8_ops
        memory = cost.memory_time_s(self.device)
        launch = cost.launches * self.device.kernel_launch_us * 1e-6
        times = {"cuda": cuda, "tcu": tcu, "memory": memory}
        resource = max(times, key=times.get)
        duration = max(times.values()) + launch
        return resource, max(duration, 1e-12)

    def run(self, trace: ExecutionTrace) -> ScheduleResult:
        """Simulate `trace` with round-robin stream assignment."""
        stream_free = [0.0] * self.streams
        resource_free = {r: 0.0 for r in self.RESOURCES}
        busy = {r: 0.0 for r in self.RESOURCES}
        timeline: List[ScheduledKernel] = []
        for index, cost in enumerate(trace.events):
            stream = index % self.streams
            resource, duration = self._classify(cost)
            start = max(stream_free[stream], resource_free[resource])
            end = start + duration
            stream_free[stream] = end
            resource_free[resource] = end
            busy[resource] += duration
            timeline.append(
                ScheduledKernel(cost.name, stream, resource, start, end)
            )
        makespan = max((k.end_s for k in timeline), default=0.0)
        return ScheduleResult(makespan, timeline, busy)

    def makespan_s(self, trace: ExecutionTrace) -> float:
        return self.run(trace).makespan_s
