"""Radix-16 ("ten-step") NTT for the tensor cores (Section 4.4, Fig. 9).

The four-step NTT splits an ``N``-point transform into GEMMs with
``sqrt(N) x sqrt(N)`` twiddle matrices; Neo decomposes once more so every
GEMM is ``16 x 16`` -- a perfect fit for the FP64 fragments (two ``8x8x4``
tiles per dimension, no padding) and an 8x reduction in GEMM MACs at
``N = 2**16`` (``2**22`` vs ``2**25``).

The functional path reuses the generic GEMM-decomposed transform of
:mod:`repro.math.ntt`; this module adds the radix-16 factorisation logic,
the TCU-backed execution hook, and the analytic cost.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Sequence

import numpy as np

from ..gpu.memory_model import ntt_traffic
from ..gpu.kernels import (
    ELEMENTWISE_FLOPS,
    KernelCost,
    elementwise_cost,
    gemm_cost_cuda,
    gemm_cost_tcu_fp64,
    gemm_cost_tcu_int8,
    word_bytes,
)
from ..gpu.tensorcore import make_tcu_gemm
from ..math import ntt as ntt_mod


def radix16_factors(degree: int) -> List[int]:
    """Decompose `degree` into radix-16 stages (last stage may be smaller).

    ``2**16 -> [16, 16, 16, 16]``; ``2**10 -> [16, 16, 4]``.
    """
    if degree < 2 or degree & (degree - 1):
        raise ValueError(f"degree must be a power of two >= 2, got {degree}")
    factors: List[int] = []
    remaining = degree
    while remaining > 1:
        stage = min(16, remaining)
        factors.append(stage)
        remaining //= stage
    return factors


class NeoNtt:
    """Negacyclic NTT through radix-16 GEMM stages, optionally on the TCU."""

    def __init__(self, degree: int, modulus: int, use_tcu: bool = True,
                 factors: Optional[Sequence[int]] = None):
        self.degree = degree
        self.modulus = modulus
        self.factors = list(factors) if factors is not None else radix16_factors(degree)
        if int(np.prod(self.factors)) != degree:
            raise ValueError(
                f"factors {self.factors} do not multiply to degree {degree}"
            )
        self._gemm = make_tcu_gemm(modulus) if use_tcu else None

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic NTT in natural order (twist + GEMM stages)."""
        return ntt_mod.negacyclic_ntt_via_gemm(
            coeffs, self.modulus, self.factors, gemm=self._gemm
        )

    def inverse(self, values: np.ndarray) -> np.ndarray:
        return ntt_mod.negacyclic_intt_via_gemm(
            values, self.modulus, self.factors, gemm=self._gemm
        )


def ntt_gemm_macs(degree: int, factors: Sequence[int]) -> int:
    """GEMM multiply-accumulates of one transform under a factorisation.

    Stage ``i`` with radix ``f_i`` performs ``N / f_i`` GEMV-like products of
    an ``f_i x f_i`` twiddle matrix: ``N * f_i`` MACs.  For ``N = 2**16``:
    four-step (256, 256) -> ``2**25``; radix-16 -> ``2**22`` (the paper's
    ``1/8`` claim).
    """
    return sum(degree * f for f in factors)


#: Butterfly stages one shared-memory pass covers (2**10-point tiles): a
#: transform wider than this round-trips its intermediate between passes.
BUTTERFLY_SMEM_STAGES = 10


@lru_cache(maxsize=4096)
def ntt_cost(
    degree: int,
    batch_limbs: int,
    wordsize: int,
    style: str = "radix16",
    component: str = "tcu_fp64",
    inverse: bool = False,
    tile_polys: Optional[int] = None,
) -> KernelCost:
    """Cost of transforming `batch_limbs` polynomials of `degree`.

    Pure function of its scalar arguments, memoised process-wide (the
    autotuner sweeps revisit the same shapes thousands of times; the
    returned :class:`KernelCost` is frozen so sharing is safe).

    Args:
        batch_limbs: number of (limb, batch) polynomials transformed together.
        style: ``"butterfly"`` (classic CUDA-core O(N log N) transform),
            ``"four_step"`` or ``"radix16"`` (GEMM decompositions).
        component: execution unit for the GEMM stages (ignored for
            ``"butterfly"``, which always runs on CUDA cores).
        tile_polys: polynomials chunked through all stages per launch group
            (the hierarchy model's inter-stage working set; ``None`` runs
            the whole batch per stage).  Flat-memory devices ignore it.
    """
    if style == "butterfly":
        wb = word_bytes(wordsize)
        elements = batch_limbs * degree
        stages = degree.bit_length() - 1
        passes = max(1, -(-stages // BUTTERFLY_SMEM_STAGES))
        return KernelCost(
            name="intt" if inverse else "ntt",
            # one modmul + add/sub per butterfly, N/2 butterflies per stage
            cuda_flops=elements / 2 * stages * 10.0,
            bytes_read=elements * wb,
            bytes_written=elements * wb,
            launches=1,
            traffic=ntt_traffic(
                elements, wb, passes, degree, batch_limbs, tile_polys=tile_polys
            ),
        )
    if style == "four_step":
        half = 1 << ((degree.bit_length() - 1) // 2)
        factors = [half, degree // half]
    elif style == "radix16":
        factors = radix16_factors(degree)
    else:
        raise ValueError(f"unknown NTT style {style!r}")
    wb = word_bytes(wordsize)
    builders = {
        "cuda": gemm_cost_cuda,
        "tcu_fp64": gemm_cost_tcu_fp64,
        "tcu_int8": gemm_cost_tcu_int8,
    }
    try:
        builder = builders[component]
    except KeyError:
        raise ValueError(f"unknown component {component!r}")
    name = "intt" if inverse else "ntt"
    total = KernelCost(name=name, launches=0)
    for radix in factors:
        stage = builder(
            name,
            m=batch_limbs * degree // radix,
            n=radix,
            k=radix,
            wordsize=wordsize,
            include_io=False,
        )
        total = KernelCost(
            name=name,
            cuda_flops=total.cuda_flops + stage.cuda_flops,
            tcu_fp64_flops=total.tcu_fp64_flops + stage.tcu_fp64_flops,
            tcu_int8_ops=total.tcu_int8_ops + stage.tcu_int8_ops,
            launches=total.launches,
        )
    elements = batch_limbs * degree
    # Twist ("Mul & Trans"), transposes and modular reductions between
    # stages run on CUDA cores; each stage touches every element once.
    between = elementwise_cost(
        name,
        elements * len(factors),
        wordsize,
        flops_per_element=8.0 + ELEMENTWISE_FLOPS,
        reads_per_element=0.0,
        writes_per_element=0.0,
    )
    return KernelCost(
        name=name,
        cuda_flops=total.cuda_flops + between.cuda_flops,
        tcu_fp64_flops=total.tcu_fp64_flops,
        tcu_int8_ops=total.tcu_int8_ops,
        # Fused stages: one read of the limbs in, one write out.
        bytes_read=elements * wb,
        bytes_written=elements * wb,
        launches=1,
        # The hierarchy model additionally sees the inter-stage round trips
        # ((stages - 1) intermediates), resident wherever the chunked
        # working set fits.
        traffic=ntt_traffic(
            elements, wb, len(factors), degree, batch_limbs, tile_polys
        ),
    )
