"""Vectorised modular arithmetic with two interchangeable backends.

FHE word sizes in the Neo paper are 36-60 bits, whose products overflow
``numpy.uint64``.  We therefore provide two backends selected per modulus:

* **fast** -- ``numpy.uint64`` arrays, valid for moduli below ``2**31`` so
  that every product of two reduced residues fits in 64 bits.  Used by the
  functional kernels when the caller picks small demonstration moduli.
* **exact** -- ``dtype=object`` arrays of Python integers, valid for any
  modulus.  Used for the paper's real 36/48/60-bit word sizes in the
  correctness tests (at reduced ring degree), where bit-exactness matters
  and throughput does not.

All functions accept and return numpy arrays and never mutate their inputs.
"""

from __future__ import annotations

import numpy as np

#: Largest modulus for which the ``uint64`` backend is safe: residues are
#: below ``2**31`` so products stay below ``2**62`` and sums below ``2**63``.
FAST_MODULUS_BOUND = 1 << 31


def uses_fast_backend(modulus: int) -> bool:
    """Return True when `modulus` qualifies for the ``uint64`` backend."""
    return 1 < modulus < FAST_MODULUS_BOUND


def backend_dtype(modulus: int):
    """Return the numpy dtype used to store residues modulo `modulus`."""
    return np.uint64 if uses_fast_backend(modulus) else object


def asarray_mod(values, modulus: int) -> np.ndarray:
    """Coerce `values` into a reduced residue array for `modulus`.

    Negative inputs are mapped into ``[0, modulus)``.
    """
    if modulus <= 1:
        raise ValueError(f"modulus must be > 1, got {modulus}")
    arr = np.asarray(values, dtype=object)
    reduced = np.mod(arr, modulus)
    if uses_fast_backend(modulus):
        return reduced.astype(np.uint64)
    return reduced


def zeros_mod(shape, modulus: int) -> np.ndarray:
    """Return an all-zero residue array of the backend dtype for `modulus`."""
    if uses_fast_backend(modulus):
        return np.zeros(shape, dtype=np.uint64)
    zero_filled = np.empty(shape, dtype=object)
    zero_filled[...] = 0
    return zero_filled


def add_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(a + b) mod modulus`` for reduced inputs."""
    if uses_fast_backend(modulus):
        # Sums of two reduced residues stay below 2**32: plain modulo is safe.
        return (a + b) % np.uint64(modulus)
    return (a + b) % modulus


def sub_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(a - b) mod modulus`` for reduced inputs."""
    if uses_fast_backend(modulus):
        return (a + np.uint64(modulus) - b) % np.uint64(modulus)
    return (a - b) % modulus


def neg_mod(a: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(-a) mod modulus`` for reduced inputs."""
    if uses_fast_backend(modulus):
        return np.where(a == 0, a, np.uint64(modulus) - a)
    return (-a) % modulus


def mul_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(a * b) mod modulus`` for reduced inputs."""
    if uses_fast_backend(modulus):
        return (a * b) % np.uint64(modulus)
    return (a * b) % modulus


def scalar_mul_mod(a: np.ndarray, scalar: int, modulus: int) -> np.ndarray:
    """Element-wise ``(a * scalar) mod modulus`` with a Python-int scalar."""
    scalar %= modulus
    if uses_fast_backend(modulus):
        return (a * np.uint64(scalar)) % np.uint64(modulus)
    return (a * scalar) % modulus


def dot_mod(matrix: np.ndarray, vector: np.ndarray, modulus: int) -> np.ndarray:
    """Matrix-vector product modulo `modulus` (exact in both backends)."""
    if uses_fast_backend(modulus):
        acc = (matrix.astype(object) @ vector.astype(object)) % modulus
        return acc.astype(np.uint64)
    return (matrix @ vector) % modulus


def matmul_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Matrix product ``(a @ b) mod modulus`` computed exactly.

    Object arithmetic is used for the accumulation so that the result is
    correct regardless of the modulus size; this is the *reference* GEMM
    against which the tensor-core emulations are checked.
    """
    product = a.astype(object) @ b.astype(object)
    reduced = product % modulus
    if uses_fast_backend(modulus):
        return reduced.astype(np.uint64)
    return reduced


def pow_mod(base: int, exponent: int, modulus: int) -> int:
    """Scalar modular exponentiation (thin wrapper over ``pow``)."""
    return pow(int(base), int(exponent), int(modulus))


def inv_mod(value: int, modulus: int) -> int:
    """Scalar modular inverse; raises ``ValueError`` if not invertible."""
    try:
        return pow(int(value), -1, int(modulus))
    except ValueError as exc:
        raise ValueError(f"{value} has no inverse modulo {modulus}") from exc


def to_signed(values: np.ndarray, modulus: int) -> np.ndarray:
    """Map residues into the centred interval ``(-modulus/2, modulus/2]``."""
    arr = np.asarray(values, dtype=object)
    half = modulus // 2
    return np.where(arr > half, arr - modulus, arr)


def from_signed(values, modulus: int) -> np.ndarray:
    """Inverse of :func:`to_signed`: map centred values back to residues."""
    return asarray_mod(values, modulus)
