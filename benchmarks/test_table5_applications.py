"""Table 5: application performance across CPU/TensorFHE/HEonGPU/Neo."""

import pytest

from repro.analysis.paper_data import HEADLINES, TABLE5_SECONDS
from repro.analysis.reporting import format_table
from repro.apps import standard_applications

APPS = standard_applications()
APP_NAMES = [app.name for app in APPS]


def _build_table(systems):
    table = {}
    for label, ctx in systems:
        table[label] = {app.name: app.time_s(ctx) for app in APPS}
    return table


@pytest.fixture(scope="module")
def systems(cpu_h, tensorfhe_a, tensorfhe_b, tensorfhe_c, heongpu_e, neo_c, neo_d):
    return [
        ("CPU", cpu_h),
        ("TensorFHE(A)", tensorfhe_a),
        ("TensorFHE(B)", tensorfhe_b),
        ("TensorFHE(C)", tensorfhe_c),
        ("HEonGPU(E)", heongpu_e),
        ("Neo(C)", neo_c),
        ("Neo(D)", neo_d),
    ]


PAPER_KEYS = {
    "CPU": ("CPU", None),
    "TensorFHE(A)": ("TensorFHE", "A"),
    "TensorFHE(B)": ("TensorFHE", "B"),
    "TensorFHE(C)": ("TensorFHE", "C"),
    "HEonGPU(E)": ("HEonGPU", "E"),
    "Neo(C)": ("Neo", "C"),
    "Neo(D)": ("Neo", "D"),
}


def test_table5_applications(benchmark, systems):
    table = benchmark(_build_table, systems)
    rows = []
    for label, times in table.items():
        paper = TABLE5_SECONDS[PAPER_KEYS[label]]
        rows.append([label] + [f"{times[name]:.2f}" for name in APP_NAMES])
        rows.append(
            ["  (paper)"]
            + [("-" if paper[name] is None else f"{paper[name]:.2f}") for name in APP_NAMES]
        )
    print()
    print(
        format_table(
            ["system"] + APP_NAMES,
            rows,
            title="Table 5: application execution time, seconds",
        )
    )
    neo = table["Neo(C)"]
    # --- Shape assertions -------------------------------------------------
    # Neo is the fastest GPU system on every application.
    for label in ("TensorFHE(A)", "TensorFHE(B)", "TensorFHE(C)", "HEonGPU(E)"):
        for name in APP_NAMES:
            assert table[label][name] > neo[name], (label, name)
    # Speedup over TensorFHE's best parameter choice lands near 3.28x.
    best_tfhe = {
        name: min(table[f"TensorFHE({s})"][name] for s in "ABC")
        for name in APP_NAMES
    }
    speedups = [best_tfhe[name] / neo[name] for name in APP_NAMES]
    mean_speedup = sum(speedups) / len(speedups)
    assert 2.0 < mean_speedup < 8.0, f"mean best-params speedup {mean_speedup:.2f}"
    print(
        f"mean speedup vs TensorFHE best params: {mean_speedup:.2f}x "
        f"(paper {HEADLINES['speedup_vs_tensorfhe_best_params']}x)"
    )
    # HEonGPU sits between TensorFHE and Neo.
    for name in APP_NAMES:
        assert neo[name] < table["HEonGPU(E)"][name] < best_tfhe[name] * 1.05
    # CPU is orders of magnitude slower.
    for name in APP_NAMES:
        assert table["CPU"][name] > 20 * neo[name]
    # ResNet scales roughly with depth: resnet56 ~ 2.9x resnet20.
    assert 2.3 < neo["resnet56"] / neo["resnet20"] < 3.5


def test_table5_single_scaling_rows(benchmark):
    """The SS rows: TensorFHE_SS at Set F vs Neo_SS at Set G (L = 23)."""
    from repro.apps import standard_applications
    from repro.baselines import TensorFheModel
    from repro.core import NEO_CONFIG, NeoContext

    ss_apps = standard_applications(single_scaling=True)

    def build():
        tfhe_f = TensorFheModel("F")
        neo_g = NeoContext("G", config=NEO_CONFIG)
        return {
            "TensorFHE_SS(F)": {a.name: a.time_s(tfhe_f) for a in ss_apps},
            "Neo_SS(G)": {a.name: a.time_s(neo_g) for a in ss_apps},
        }

    table = benchmark(build)
    paper = {
        "TensorFHE_SS(F)": TABLE5_SECONDS[("TensorFHE_SS", "F")],
        "Neo_SS(G)": TABLE5_SECONDS[("Neo_SS", "G")],
    }
    rows = []
    for label, times in table.items():
        rows.append([label] + [f"{times[a.name]:.2f}" for a in ss_apps])
        rows.append(["  (paper)"] + [f"{paper[label][a.name]:.2f}" for a in ss_apps])
    print()
    print(
        format_table(
            ["system"] + [a.name for a in ss_apps],
            rows,
            title="Table 5 (SS rows): single-scaling at L = 23",
        )
    )
    for app in ss_apps:
        neo_t = table["Neo_SS(G)"][app.name]
        tfhe_t = table["TensorFHE_SS(F)"][app.name]
        # Neo_SS wins on every app (paper: ~3-4x).
        assert neo_t < tfhe_t, app.name
        assert 1.5 < tfhe_t / neo_t < 8.0, (app.name, tfhe_t / neo_t)
    # The L=23 (SS) configurations are faster than the L=35 ones.
    neo_full = NeoContext("C", config=NEO_CONFIG)
    full_apps = standard_applications()
    assert ss_apps[0].time_s(NeoContext("G", config=NEO_CONFIG)) < full_apps[
        0
    ].time_s(neo_full)
