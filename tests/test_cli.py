"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_params_all(capsys):
    assert main(["params"]) == 0
    out = capsys.readouterr().out
    for name in "ABCDEFGH":
        assert f"\n{name} " in out


def test_params_single(capsys):
    assert main(["params", "c"]) == 0
    out = capsys.readouterr().out
    assert "C" in out and "T=48" in out


def test_params_unknown(capsys):
    assert main(["params", "Z"]) == 2


@pytest.mark.parametrize("number", ["2", "6", "7", "8"])
def test_tables(capsys, number):
    assert main(["table", number]) == 0
    assert capsys.readouterr().out.strip()


def test_table_unknown(capsys):
    assert main(["table", "99"]) == 2


@pytest.mark.parametrize("number", ["3", "14", "16"])
def test_figs(capsys, number):
    assert main(["fig", number]) == 0
    assert capsys.readouterr().out.strip()


def test_fig_unknown(capsys):
    assert main(["fig", "99"]) == 2


def test_fig16_shape(capsys):
    main(["fig", "16"])
    out = capsys.readouterr().out
    assert "KLSS-48" in out and "Hybrid" in out


def test_no_command_exits():
    with pytest.raises(SystemExit):
        main([])
