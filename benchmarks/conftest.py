"""Shared contexts for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section and prints the rows/series it reports, alongside the paper's own
numbers where available.  Run with ``pytest benchmarks/ --benchmark-only``
(add ``-s`` to see the printed tables inline).
"""

import pytest

from repro.baselines import CpuModel, HeonGpuModel, TensorFheModel
from repro.core import NEO_CONFIG, NeoContext


@pytest.fixture(scope="session")
def neo_c():
    return NeoContext("C", config=NEO_CONFIG)


@pytest.fixture(scope="session")
def neo_d():
    return NeoContext("D", config=NEO_CONFIG)


@pytest.fixture(scope="session")
def neo_b_hybrid():
    return NeoContext("B", config=NEO_CONFIG.with_overrides(keyswitch="hybrid"))


@pytest.fixture(scope="session")
def tensorfhe_a():
    return TensorFheModel("A")


@pytest.fixture(scope="session")
def tensorfhe_b():
    return TensorFheModel("B")


@pytest.fixture(scope="session")
def tensorfhe_c():
    return TensorFheModel("C")


@pytest.fixture(scope="session")
def heongpu_e():
    return HeonGpuModel("E")


@pytest.fixture(scope="session")
def cpu_h():
    return CpuModel("H")
