"""Analytic reproductions: complexity (Table 2), traffic (Figs 2/15),
Booth/plane analysis (Fig 3), paper-reported data, table formatting."""

from . import booth, complexity, memory_footprint, memory_traffic, paper_data, reporting, security
from .booth import fig3_comparison, fp64_speedup
from .complexity import complexity_table, hybrid_complexity, klss_complexity
from .memory_footprint import (
    ciphertext_bytes,
    hybrid_evk_bytes,
    klss_evk_bytes,
    max_batch_size,
    working_set_bytes,
)
from .memory_traffic import (
    keyswitch_transfer_breakdown,
    keyswitch_transfer_shares,
    transfer_reduction,
)
from .reporting import format_series, format_table, ratio_report
from .security import estimated_security_bits, max_modulus_bits, meets_security

__all__ = [
    "booth",
    "ciphertext_bytes",
    "complexity",
    "complexity_table",
    "fig3_comparison",
    "format_series",
    "format_table",
    "fp64_speedup",
    "estimated_security_bits",
    "hybrid_complexity",
    "hybrid_evk_bytes",
    "keyswitch_transfer_breakdown",
    "keyswitch_transfer_shares",
    "klss_complexity",
    "klss_evk_bytes",
    "max_batch_size",
    "max_modulus_bits",
    "meets_security",
    "memory_footprint",
    "memory_traffic",
    "paper_data",
    "ratio_report",
    "security",
    "transfer_reduction",
    "working_set_bytes",
]
