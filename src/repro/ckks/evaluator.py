"""The CKKS evaluator: HADD, PADD, HMULT, PMULT, HROTATE, Rescale, DS.

All primitive operations of Section 2.1, with key switching delegated to a
pluggable back-end (``"hybrid"`` or ``"klss"``) -- the axis the paper's
ablation (Fig. 14, first step) turns.
"""

from __future__ import annotations

from functools import reduce
from typing import Optional, Tuple

from ..math.polynomial import RnsPolynomial
from .ciphertext import Ciphertext
from .encoder import Plaintext
from .keys import (
    GaloisKeys,
    KeySwitchKey,
    conjugation_galois_power,
    rotation_galois_power,
)
from .keyswitch import hybrid as hybrid_ks
from .keyswitch import klss as klss_ks
from .params import CkksParameters

#: Relative scale mismatch tolerated by additive operations.  Rescaling
#: divides by a prime that only approximates the scale (q_i ~ Delta), so
#: scales drift by ~|q_i - Delta| / Delta per level; treating drifted
#: scales as equal introduces the same relative error in sums, which is
#: the standard approximate-scale convention (decode always uses the
#: exactly tracked float scale).
_SCALE_RTOL = 5e-2

#: GEMM-form engines plus their per-digit reference pipelines (the
#: ``-loop`` variants are bit-identical and kept for differential runs).
KEYSWITCH_METHODS = ("hybrid", "klss", "hybrid-loop", "klss-loop")


class Evaluator:
    """Homomorphic operations over CKKS ciphertexts.

    Args:
        params: the parameter set.
        relin_key: key for ``s**2 -> s`` (required by :meth:`multiply`).
        galois_keys: rotation/conjugation keys (required by :meth:`rotate`).
        method: key-switching back-end, ``"hybrid"`` or ``"klss"``.
        observer: optional telemetry hook (e.g.
            :class:`~repro.telemetry.fhe.FheMeter`); after every operation
            its ``after_op(name, inputs, output)`` is called with the input
            and output ciphertexts.  ``None`` (the default) costs a single
            ``is not None`` test per operation.
    """

    def __init__(
        self,
        params: CkksParameters,
        relin_key: Optional[KeySwitchKey] = None,
        galois_keys: Optional[GaloisKeys] = None,
        method: str = "hybrid",
        observer=None,
    ):
        if method not in KEYSWITCH_METHODS:
            raise ValueError(f"method must be one of {KEYSWITCH_METHODS}")
        if method in ("klss", "klss-loop") and params.klss is None:
            raise ValueError("KLSS method requires parameters with a KlssConfig")
        self.params = params
        self.relin_key = relin_key
        self.galois_keys = galois_keys
        self.method = method
        self.observer = observer

    def _observe(self, op: str, inputs, output: Ciphertext) -> Ciphertext:
        if self.observer is not None:
            self.observer.after_op(op, inputs, output)
        return output

    # -- key switching dispatch ----------------------------------------------------

    def _keyswitch(
        self, poly: RnsPolynomial, ksk: KeySwitchKey
    ) -> Tuple[RnsPolynomial, RnsPolynomial]:
        if self.method == "klss":
            return klss_ks.keyswitch(poly, ksk, self.params)
        if self.method == "klss-loop":
            return klss_ks.keyswitch_loop(poly, ksk, self.params)
        if self.method == "hybrid-loop":
            return hybrid_ks.keyswitch_loop(poly, ksk, self.params)
        return hybrid_ks.keyswitch(poly, ksk, self.params)

    # -- level/scale alignment -------------------------------------------------------

    def mod_switch_to_level(self, ct: Ciphertext, level: int) -> Ciphertext:
        """Drop limbs down to `level` without rescaling (exact on slots)."""
        if level > ct.level:
            raise ValueError(f"cannot raise level {ct.level} -> {level}")
        if level == ct.level:
            return ct
        count = level + 1
        return Ciphertext(
            ct.c0.keep_limbs(count),
            ct.c1.keep_limbs(count),
            ct.scale,
            ct.params,
            None if ct.c2 is None else ct.c2.keep_limbs(count),
        )

    def _align(self, ct0: Ciphertext, ct1: Ciphertext) -> Tuple[Ciphertext, Ciphertext]:
        level = min(ct0.level, ct1.level)
        ct0 = self.mod_switch_to_level(ct0, level)
        ct1 = self.mod_switch_to_level(ct1, level)
        if abs(ct0.scale - ct1.scale) > _SCALE_RTOL * max(ct0.scale, ct1.scale):
            raise ValueError(
                f"scale mismatch: 2^{ct0.scale:.3e} vs 2^{ct1.scale:.3e}; rescale first"
            )
        return ct0, ct1

    @staticmethod
    def _require_relinearised(ct: Ciphertext, op: str):
        if ct.c2 is not None:
            raise ValueError(f"{op} requires a relinearised ciphertext")

    # -- additive ops ------------------------------------------------------------------

    def add(self, ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext:
        """HADD: ciphertext + ciphertext."""
        self._require_relinearised(ct0, "add")
        self._require_relinearised(ct1, "add")
        ct0, ct1 = self._align(ct0, ct1)
        out = Ciphertext(
            ct0.c0.add(ct1.c0), ct0.c1.add(ct1.c1), ct0.scale, ct0.params
        )
        return self._observe("add", (ct0, ct1), out)

    def sub(self, ct0: Ciphertext, ct1: Ciphertext) -> Ciphertext:
        self._require_relinearised(ct0, "sub")
        self._require_relinearised(ct1, "sub")
        ct0, ct1 = self._align(ct0, ct1)
        out = Ciphertext(
            ct0.c0.sub(ct1.c0), ct0.c1.sub(ct1.c1), ct0.scale, ct0.params
        )
        return self._observe("sub", (ct0, ct1), out)

    def negate(self, ct: Ciphertext) -> Ciphertext:
        return Ciphertext(
            ct.c0.negate(),
            ct.c1.negate(),
            ct.scale,
            ct.params,
            None if ct.c2 is None else ct.c2.negate(),
        )

    def add_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """PADD: plaintext + ciphertext (noise-free, no key material)."""
        pt_poly = self._plain_at_level(pt, ct.level, ct.scale)
        out = Ciphertext(ct.c0.add(pt_poly), ct.c1, ct.scale, ct.params, ct.c2)
        return self._observe("add_plain", (ct,), out)

    def sub_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        pt_poly = self._plain_at_level(pt, ct.level, ct.scale)
        out = Ciphertext(ct.c0.sub(pt_poly), ct.c1, ct.scale, ct.params, ct.c2)
        return self._observe("sub_plain", (ct,), out)

    def _plain_at_level(
        self, pt: Plaintext, level: int, expected_scale: float
    ) -> RnsPolynomial:
        if abs(pt.scale - expected_scale) > _SCALE_RTOL * max(pt.scale, expected_scale):
            raise ValueError("plaintext scale does not match ciphertext scale")
        if pt.level < level:
            raise ValueError("plaintext encoded at a lower level than ciphertext")
        return pt.poly.keep_limbs(level + 1)

    # -- multiplicative ops ---------------------------------------------------------------

    def multiply_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """PMULT: plaintext * ciphertext (no KeySwitch; Section 2.1)."""
        self._require_relinearised(ct, "multiply_plain")
        if pt.level < ct.level:
            raise ValueError("plaintext encoded at a lower level than ciphertext")
        pt_poly = pt.poly.keep_limbs(ct.level + 1).to_ntt()
        c0 = ct.c0.to_ntt().multiply(pt_poly).from_ntt()
        c1 = ct.c1.to_ntt().multiply(pt_poly).from_ntt()
        out = Ciphertext(c0, c1, ct.scale * pt.scale, ct.params)
        return self._observe("multiply_plain", (ct,), out)

    def multiply(
        self, ct0: Ciphertext, ct1: Ciphertext, relinearise: bool = True
    ) -> Ciphertext:
        """HMULT: ciphertext * ciphertext with optional relinearisation."""
        self._require_relinearised(ct0, "multiply")
        self._require_relinearised(ct1, "multiply")
        level = min(ct0.level, ct1.level)
        ct0 = self.mod_switch_to_level(ct0, level)
        ct1 = self.mod_switch_to_level(ct1, level)
        a0, a1 = ct0.c0.to_ntt(), ct0.c1.to_ntt()
        b0, b1 = ct1.c0.to_ntt(), ct1.c1.to_ntt()
        d0 = a0.multiply(b0).from_ntt()
        d1 = a0.multiply(b1).add(a1.multiply(b0)).from_ntt()
        d2 = a1.multiply(b1).from_ntt()
        product = Ciphertext(d0, d1, ct0.scale * ct1.scale, ct0.params, c2=d2)
        self._observe("multiply", (ct0, ct1), product)
        if relinearise:
            product = self.relinearise(product)
        return product

    def square(self, ct: Ciphertext, relinearise: bool = True) -> Ciphertext:
        return self.multiply(ct, ct, relinearise=relinearise)

    def relinearise(self, ct: Ciphertext) -> Ciphertext:
        """Fold the ``s**2`` component back into ``(c0, c1)`` via KeySwitch."""
        if ct.c2 is None:
            return ct
        if self.relin_key is None:
            raise ValueError("no relinearisation key configured")
        p0, p1 = self._keyswitch(ct.c2, self.relin_key)
        out = Ciphertext(
            ct.c0.add(p0), ct.c1.add(p1), ct.scale, ct.params
        )
        return self._observe("relinearise", (ct,), out)

    # -- rotations ------------------------------------------------------------------------

    def rotate(self, ct: Ciphertext, steps: int) -> Ciphertext:
        """HROTATE: cyclically rotate the slot vector by `steps`."""
        self._require_relinearised(ct, "rotate")
        if self.galois_keys is None:
            raise ValueError("no Galois keys configured")
        power = rotation_galois_power(steps, self.params.degree)
        return self._observe("rotate", (ct,), self._apply_galois(ct, power))

    def conjugate(self, ct: Ciphertext) -> Ciphertext:
        """Complex-conjugate every slot."""
        self._require_relinearised(ct, "conjugate")
        if self.galois_keys is None:
            raise ValueError("no Galois keys configured")
        out = self._apply_galois(ct, conjugation_galois_power(self.params.degree))
        return self._observe("conjugate", (ct,), out)

    def _apply_galois(self, ct: Ciphertext, power: int) -> Ciphertext:
        key = self.galois_keys.get(power)
        rotated_c0 = ct.c0.automorphism(power)
        rotated_c1 = ct.c1.automorphism(power)
        p0, p1 = self._keyswitch(rotated_c1, key)
        return Ciphertext(rotated_c0.add(p0), p1, ct.scale, ct.params)

    def rotate_many(self, ct: Ciphertext, steps) -> dict:
        """All requested rotations off ONE shared (hoisted) ModUp.

        GEMM-form methods run the op-plan compiler's batched engine;
        ``*-loop`` methods run the per-digit hoisted baseline.  Note the
        hoisted dataflow is not bit-identical to per-step :meth:`rotate`
        (the approximate-ModUp slack transforms differently), but both
        decrypt to the same slots.
        """
        self._require_relinearised(ct, "rotate_many")
        if self.galois_keys is None:
            raise ValueError("no Galois keys configured")
        from .hoisting import hoisted_rotations

        engine = "loop" if self.method.endswith("-loop") else "plan"
        return hoisted_rotations(
            ct, steps, self.galois_keys, self.params,
            method=self.method, engine=engine,
        )

    # -- rescaling --------------------------------------------------------------------------

    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Divide by the last prime and drop one level (Section 2.1)."""
        return self._observe("rescale", (ct,), self._drop_scaled(ct, 1))

    def rescale_raw(self, ct: Ciphertext) -> Ciphertext:
        """Rescale without requiring relinearisation (alias kept for clarity)."""
        return self._observe("rescale", (ct,), self._drop_scaled(ct, 1))

    def double_rescale(self, ct: Ciphertext) -> Ciphertext:
        """DS: divide by the last *two* primes, dropping two levels.

        Used during Bootstrapping at small WordSize (Section 2.1, DS).
        """
        return self._observe("double_rescale", (ct,), self._drop_scaled(ct, 2))

    def _drop_scaled(self, ct: Ciphertext, count: int) -> Ciphertext:
        level = ct.level
        if level < count:
            raise ValueError(f"cannot drop {count} levels from level {level}")
        moduli = ct.c0.basis.moduli
        dropped = moduli[level + 1 - count : level + 1]
        drop_product = reduce(lambda a, b: a * b, dropped, 1)
        c0 = self._exact_divide_drop(ct.c0, count, drop_product)
        c1 = self._exact_divide_drop(ct.c1, count, drop_product)
        c2 = (
            None
            if ct.c2 is None
            else self._exact_divide_drop(ct.c2, count, drop_product)
        )
        return Ciphertext(c0, c1, ct.scale / drop_product, ct.params, c2=c2)

    def _exact_divide_drop(
        self, poly: RnsPolynomial, count: int, drop_product: int
    ) -> RnsPolynomial:
        """Round-divide a polynomial by the product of its last `count` limbs.

        The whole correction runs as stack arithmetic: dropping one limb
        (the common Rescale) never leaves machine words, and the bignum CRT
        compose only runs when several limbs are dropped at once.
        """
        poly = poly.from_ntt()
        keep = len(poly.basis) - count
        from ..math.modstack import ModulusStack
        from ..math.rns import RnsBasis

        if count == 1:
            # A single dropped limb IS the tail value -- no CRT compose.
            tail_value = poly.limbs[keep]
        else:
            tail_basis = RnsBasis(poly.basis.moduli[keep:])
            tail_value = tail_basis.compose(poly.limbs[keep:])
        keep_basis = poly.basis.subbasis(0, keep)
        mstack = ModulusStack.for_moduli(keep_basis.moduli)
        scaled = mstack.divide_exact_drop(poly.stack[:keep], tail_value, drop_product)
        return RnsPolynomial(poly.degree, keep_basis, scaled, is_ntt=False)
