"""HEonGPU (Ozcan & Savas, ePrint 2024/1543) performance model.

A modern, well-engineered CUDA-core-only CKKS library: classic butterfly
NTT, read-once fused kernels, Hybrid key switching with NTT-domain
accumulation -- but no tensor-core usage at all.  The paper evaluates it
at Set E (its native 60-bit WordSize parameters).
"""

from __future__ import annotations

from typing import Optional

from ..ckks.params import ParameterSet
from ..core.neo_context import NeoContext
from ..core.pipeline import HEONGPU_CONFIG
from ..gpu.device import A100, DeviceSpec


class HeonGpuModel(NeoContext):
    """A :class:`NeoContext` pinned to the HEonGPU configuration."""

    def __init__(
        self,
        params: ParameterSet | str = "E",
        device: DeviceSpec = A100,
        batch: Optional[int] = 128,
    ):
        super().__init__(params, device=device, config=HEONGPU_CONFIG, batch=batch)
