"""The request server: simulated-clock continuous batching over the Neo model.

:class:`Server` admits a stream of FHE jobs (``submit``), forms dynamic
batches through :class:`~repro.serving.batcher.ContinuousBatcher`, and
replays the whole arrival trace on a simulated clock (``drain``), placing
each batch on the first free *lane*.  Lanes are disjoint groups of CUDA
streams: the device's ``config.streams`` streams are partitioned evenly,
so each batch's service time is its trace's overlapped time under its
lane's stream share (the Section 4.6 multi-stream model), and batches on
different lanes run concurrently -- exactly the TCU/CUDA-core overlap the
paper exploits *within* a batch, lifted across batches.

Everything is deterministic: the same submitted trace always yields the
same schedule, and :meth:`ServingReport.fingerprint` hashes the timeline so
replays can assert bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Union

from ..analysis.reporting import format_table
from ..ckks.keyswitch import plan as ksplan
from ..apps import get_application
from ..core.neo_context import NeoContext
from ..core.pipeline import NEO_CONFIG, PipelineConfig
from ..core.profiling import latency_percentiles, timeline_schedule_result
from ..core.streams import ScheduledKernel, StreamScheduler
from ..core.trace_cache import CacheStats, TraceCache
from ..gpu.device import A100, DeviceSpec
from ..telemetry.registry import MetricsRegistry, global_registry
from ..telemetry.stats import all_cache_stats
from ..telemetry.tracing import Tracer, active_tracer
from .batcher import Batch, ContinuousBatcher
from .overload import ADMITTED, REJECTED, SHED, AdmissionController, OverloadPolicy
from .policies import AdmissionPolicy, get_policy
from .queue import RequestQueue
from .request import Request, RequestRecord

#: Executed-BatchSize histogram boundaries (powers of two up to Table 5's
#: largest modelled batch).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Queue-depth histogram boundaries (requests waiting).
QUEUE_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Per-batch kernel spans recorded per request trace; everything beyond is
#: summarised in the batch span's ``kernels``/``kernels_traced`` attributes.
MAX_KERNEL_SPANS = 64

#: Process-wide kernel-span descriptor cache.  The simulated kernel
#: placement is a pure function of (params, config, app, size, streams,
#: limit), so fresh Server instances share already-simulated shapes --
#: keeps first-drain telemetry cost flat across servers.
_SPAN_DESCRIPTOR_CACHE: Dict[tuple, tuple] = {}


class NeoServiceModel:
    """Times dynamic batches on the analytic device model.

    One root :class:`NeoContext` owns the trace cache; per-batch-size
    sibling contexts share it, so a (app, BatchSize) shape is built at most
    once per server lifetime and every repeat is a cache hit.

    With ``autotune=True`` the model prices under the hierarchical memory
    model and, per application, runs (or fetches from the shared
    :class:`~repro.core.autotuner.TuningStore`) a quick-budget
    :func:`~repro.core.autotuner.tune_app` search; batches of that app are
    then timed under the tuned parameters and pipeline configuration.
    """

    def __init__(
        self,
        params: str = "C",
        config: PipelineConfig = NEO_CONFIG,
        trace_cache: Optional[TraceCache] = None,
        device: DeviceSpec = A100,
        autotune: bool = False,
        tuning_store=None,
        tuning_budget: str = "quick",
    ):
        if autotune:
            device = device.hier()
        # ``is not None``, not ``or``: TraceCache defines __len__, so an
        # empty (still-cold) cache is falsy and ``or`` would discard it.
        self._root = NeoContext(
            params,
            device=device,
            config=config,
            batch=1,
            trace_cache=trace_cache if trace_cache is not None else TraceCache(),
        )
        self._config = config
        self._device = device
        self._autotune = autotune
        self._tuning_budget = tuning_budget
        self._tuning_store = tuning_store
        self._tuned_roots: Dict[str, NeoContext] = {}
        self._tuned_choices: Dict[str, object] = {}
        self._apps: Dict[str, object] = {}
        self._span_cache = _SPAN_DESCRIPTOR_CACHE

    def _app(self, app: str):
        if app not in self._apps:
            self._apps[app] = get_application(app)
        return self._apps[app]

    def _root_for(self, app: str) -> NeoContext:
        """The (possibly tuned) batch=1 root context for one application."""
        if not self._autotune:
            return self._root
        if app not in self._tuned_roots:
            from ..core.autotuner import default_tuning_store

            store = self._tuning_store or default_tuning_store()
            report = store.get_or_tune(
                app,
                params=self._root.params,
                device=self._device,
                budget=self._tuning_budget,
                trace_cache=self._root.trace_cache,
            )
            best = report.best
            self._tuned_choices[app] = best
            self._tuned_roots[app] = NeoContext(
                best.parameter_set(self._root.params),
                device=self._device,
                config=best.pipeline_config(self._config),
                batch=1,
                trace_cache=self._root.trace_cache,
            )
        return self._tuned_roots[app]

    def tuned_summary(self) -> Dict[str, str]:
        """``{app: tuned-config label}`` for every app tuned so far."""
        return {
            app: choice.label() for app, choice in self._tuned_choices.items()
        }

    def service_time_s(self, app: str, size: int, streams: int) -> float:
        """Wall time of one `app` batch of `size` ciphertexts on `streams`."""
        ctx = self._root_for(app).with_batch(size)
        trace = ctx.application_trace(self._app(app))
        return trace.overlapped_time_s(ctx.device, streams)

    def batch_trace(self, app: str, size: int):
        """Frozen execution trace of one `app` batch of `size` ciphertexts.

        The fleet layer feeds this to the multi-GPU cost model; the trace
        comes out of the shared cache, so multi-device timing never
        rebuilds a shape the single-device path already priced.
        """
        ctx = self._root_for(app).with_batch(size)
        return ctx.application_trace(self._app(app)).frozen()

    def batch_device(self, size: int):
        """The batch-derated device a batch of `size` executes on."""
        return self._root.with_batch(size).device

    def cache_stats(self) -> CacheStats:
        return self._root.cache_stats()

    def batch_spans(
        self, app: str, size: int, streams: int, limit: int = MAX_KERNEL_SPANS
    ) -> tuple:
        """Relative kernel spans of one `app` batch: the per-op path.

        Returns ``(descriptors, total_kernels)`` where each descriptor is
        ``(name, resource, stream, rel_start_s, rel_end_s)`` relative to the
        batch start.  The discrete-event stream schedule is simulated once
        per (app, size, streams) shape and rescaled onto the analytic
        service time, so batch sub-spans land inside the batch span exactly.
        """
        root = self._root_for(app)
        key = (root.params, root.config, app, size, streams, limit)
        cached = self._span_cache.get(key)
        if cached is None:
            ctx = root.with_batch(size)
            trace = ctx.application_trace(self._app(app))
            result = StreamScheduler(ctx.device, streams).run(trace)
            service = trace.overlapped_time_s(ctx.device, streams)
            scale = service / result.makespan_s if result.makespan_s > 0 else 1.0
            descriptors = tuple(
                (k.name, k.resource, k.stream, k.start_s * scale, k.end_s * scale)
                for k in result.timeline[:limit]
            )
            cached = (descriptors, len(result.timeline))
            self._span_cache[key] = cached
        return cached

    def noise_trajectory(self, app: str):
        """Modeled noise-budget series of one `app` run (per schedule level)."""
        from ..telemetry.fhe import modeled_noise_trajectory

        return modeled_noise_trajectory(
            self._root.params, self._app(app).schedule(self._root.params)
        )


class FixedServiceModel:
    """Test double: service time from a user-supplied function."""

    def __init__(self, time_fn: Callable[[str, int], float]):
        self._time_fn = time_fn

    def service_time_s(self, app: str, size: int, streams: int) -> float:
        return self._time_fn(app, size)

    def cache_stats(self) -> CacheStats:
        return CacheStats()


@dataclass
class ServingReport:
    """Everything one ``drain`` produced: records, batches, metrics."""

    records: List[RequestRecord] = field(default_factory=list)
    batches: List[Batch] = field(default_factory=list)
    lanes: int = 1
    streams_per_lane: int = 1
    makespan_s: float = 0.0
    mean_queue_depth: float = 0.0
    max_queue_depth: int = 0
    #: Requests dropped by overload policy (pressure shedding + priority
    #: evictions), by hard necessity (queue full / tenant quota), and by
    #: explicit mid-drain cancellation.  Empty without an overload policy.
    shed: List[Request] = field(default_factory=list)
    rejected: List[Request] = field(default_factory=list)
    cancelled: List[Request] = field(default_factory=list)
    #: The admission controller's conserved ledger (offered / admitted /
    #: shed / rejected plus per-reason counts); empty without a policy.
    admission: Dict[str, int] = field(default_factory=dict)
    #: Admission-queue capacity bound in force (``None`` = unbounded).
    queue_capacity: Optional[int] = None
    #: Peak queue fill fraction in [0, 1] (0.0 for unbounded queues).
    peak_pressure: float = 0.0
    cache: CacheStats = field(default_factory=CacheStats)
    #: Key-switch / rotation op-plan cache counters (hits, misses,
    #: evictions, hit_rate) snapshotted at drain time -- shows how much
    #: GEMM-plan compilation the serving run amortised.
    op_plans: Dict[str, float] = field(default_factory=dict)
    #: Every registered cache surface (trace cache, NTT plan/stack caches,
    #: op-plan cache, ...) as ``{name: {hits, misses, evictions, hit_rate}}``
    #: -- the unified view :mod:`repro.telemetry.stats` keeps per process.
    caches: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Per-app tuned configuration labels the service model chose (empty
    #: unless the server was built with ``autotune=True``).
    tuned: Dict[str, str] = field(default_factory=dict)

    # -- headline metrics ---------------------------------------------------------

    @property
    def served(self) -> int:
        return len(self.records)

    @property
    def ciphertexts(self) -> int:
        return sum(r.request.size for r in self.records)

    @property
    def throughput_rps(self) -> float:
        """Requests per simulated second over the makespan."""
        return self.served / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def throughput_cts(self) -> float:
        """Ciphertexts per simulated second over the makespan."""
        return self.ciphertexts / self.makespan_s if self.makespan_s > 0 else 0.0

    def latencies_s(self) -> List[float]:
        return [r.latency_s for r in self.records]

    def latency_summary(self) -> Dict[str, float]:
        return latency_percentiles(self.latencies_s())

    @property
    def slo_violations(self) -> int:
        return sum(1 for r in self.records if not r.slo_met)

    @property
    def slo_attainment(self) -> float:
        return 1.0 - self.slo_violations / self.served if self.served else 1.0

    # -- overload accounting ------------------------------------------------------

    @property
    def shed_count(self) -> int:
        return len(self.shed)

    @property
    def rejected_count(self) -> int:
        return len(self.rejected)

    @property
    def cancelled_count(self) -> int:
        return len(self.cancelled)

    @property
    def offered(self) -> int:
        """Requests submitted: served + shed + rejected + cancelled."""
        return (
            self.served + self.shed_count + self.rejected_count
            + self.cancelled_count
        )

    def per_tier(self) -> Dict[str, Dict[str, float]]:
        """Per-service-tier outcome table: served/shed/rejected, P95, SLO.

        Attainment is over *admitted-and-served* requests -- the number an
        overloaded server is graded on once shedding is policy, not
        failure.
        """
        tiers: Dict[str, Dict[str, float]] = {}

        def slot(tier: str) -> Dict[str, float]:
            return tiers.setdefault(
                tier,
                {"served": 0, "shed": 0, "rejected": 0, "cancelled": 0,
                 "p95_s": 0.0, "slo_attainment": 1.0},
            )

        by_tier: Dict[str, List[RequestRecord]] = {}
        for record in self.records:
            by_tier.setdefault(record.request.tier, []).append(record)
        for tier, records in by_tier.items():
            entry = slot(tier)
            entry["served"] = len(records)
            entry["p95_s"] = latency_percentiles(
                [r.latency_s for r in records]
            )["p95"]
            entry["slo_attainment"] = (
                sum(1 for r in records if r.slo_met) / len(records)
            )
        for bucket, name in (
            (self.shed, "shed"), (self.rejected, "rejected"),
            (self.cancelled, "cancelled"),
        ):
            for request in bucket:
                slot(request.tier)[name] += 1
        return dict(sorted(tiers.items()))

    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.total_size for b in self.batches) / len(self.batches)

    def batch_size_histogram(self) -> Dict[int, int]:
        """Executed BatchSize -> number of batches (sorted by size)."""
        hist: Dict[int, int] = {}
        for b in self.batches:
            hist[b.executed_size] = hist.get(b.executed_size, 0) + 1
        return dict(sorted(hist.items()))

    # -- timeline -----------------------------------------------------------------

    def timeline(self) -> List[ScheduledKernel]:
        """One :class:`ScheduledKernel` block per dispatched batch."""
        spans: Dict[int, RequestRecord] = {}
        for record in self.records:
            spans.setdefault(record.batch_id, record)
        blocks = []
        for batch in self.batches:
            span = spans[batch.bid]
            blocks.append(
                ScheduledKernel(
                    name=f"{batch.app} x{batch.total_size} (b{batch.executed_size})",
                    stream=span.lane,
                    resource=batch.app,
                    start_s=span.start_s,
                    end_s=span.finish_s,
                )
            )
        return blocks

    def to_chrome_trace(self) -> str:
        """The serving timeline in Chrome ``chrome://tracing`` JSON."""
        return timeline_schedule_result(self.timeline()).to_chrome_trace()

    def fingerprint(self) -> str:
        """SHA-256 of the batch timeline; equal across identical replays."""
        return timeline_schedule_result(self.timeline()).fingerprint()

    # -- reporting ----------------------------------------------------------------

    def format(self) -> str:
        """A printable throughput / latency / batching report."""
        lat = self.latency_summary()
        lines = [
            f"served {self.served} requests ({self.ciphertexts} ciphertexts) "
            f"in {self.makespan_s:.1f} simulated s "
            f"on {self.lanes} lane(s) x {self.streams_per_lane} stream(s)",
            f"  throughput : {self.throughput_rps:.3f} req/s"
            f"  ({self.throughput_cts:.3f} ct/s)",
            f"  latency    : P50 {lat['p50']:.1f} s, P95 {lat['p95']:.1f} s, "
            f"P99 {lat['p99']:.1f} s, max {lat['max']:.1f} s",
            f"  SLO        : {self.slo_violations} violations "
            f"({100 * self.slo_attainment:.1f}% attainment)",
            f"  queue      : mean depth {self.mean_queue_depth:.1f}, "
            f"peak {self.max_queue_depth}",
            f"  batches    : {len(self.batches)} formed, "
            f"mean fill {self.mean_batch_size():.1f} cts",
        ]
        if self.offered != self.served or self.queue_capacity is not None:
            cap = (
                f"capacity {self.queue_capacity}"
                if self.queue_capacity is not None
                else "unbounded"
            )
            lines.append(
                f"  overload   : {self.shed_count} shed, "
                f"{self.rejected_count} rejected, "
                f"{self.cancelled_count} cancelled of {self.offered} offered "
                f"({cap}, peak pressure {100 * self.peak_pressure:.0f}%)"
            )
            tiers = self.per_tier()
            if len(tiers) > 1:
                rows = [
                    [
                        tier,
                        int(entry["served"]),
                        int(entry["shed"]),
                        int(entry["rejected"]),
                        f"{entry['p95_s']:.1f}",
                        f"{100 * entry['slo_attainment']:.1f}%",
                    ]
                    for tier, entry in tiers.items()
                ]
                lines.append("")
                lines.append(
                    format_table(
                        ["tier", "served", "shed", "rejected", "P95 s",
                         "SLO attainment"],
                        rows,
                        title="per-tier outcomes",
                    )
                )
        lines.append("")
        per_app: Dict[str, List[RequestRecord]] = {}
        for record in self.records:
            per_app.setdefault(record.request.app, []).append(record)
        rows = []
        for app in sorted(per_app):
            records = per_app[app]
            app_lat = latency_percentiles([r.latency_s for r in records])
            rows.append(
                [
                    app,
                    len(records),
                    f"{app_lat['p50']:.1f}",
                    f"{app_lat['p95']:.1f}",
                    f"{app_lat['p99']:.1f}",
                    sum(1 for r in records if not r.slo_met),
                ]
            )
        lines.append(
            format_table(
                ["application", "requests", "P50 s", "P95 s", "P99 s", "SLO miss"],
                rows,
                title="per-application latency",
            )
        )
        hist = self.batch_size_histogram()
        if hist:
            lines.append("")
            lines.append(
                format_table(
                    ["BatchSize", "batches"],
                    [[size, count] for size, count in hist.items()],
                    title="dynamic batch sizes",
                )
            )
        lines.append("")
        lines.append(
            "trace cache: "
            f"{self.cache.hits} hits / {self.cache.misses} misses "
            f"({100 * self.cache.hit_rate:.1f}% hit rate)"
        )
        if self.op_plans:
            lines.append(
                "op-plan cache: "
                f"{int(self.op_plans.get('hits', 0))} hits / "
                f"{int(self.op_plans.get('misses', 0))} misses "
                f"({100 * self.op_plans.get('hit_rate', 0.0):.1f}% hit rate)"
            )
        if self.caches:
            rows = [
                [
                    name,
                    int(c.get("hits", 0)),
                    int(c.get("misses", 0)),
                    int(c.get("evictions", 0)),
                    f"{100 * c.get('hit_rate', 0.0):.1f}%",
                ]
                for name, c in sorted(self.caches.items())
            ]
            lines.append("")
            lines.append(
                format_table(
                    ["cache", "hits", "misses", "evictions", "hit rate"],
                    rows,
                    title="cache surfaces",
                )
            )
        if self.tuned:
            lines.append("")
            lines.append(
                format_table(
                    ["app", "tuned configuration"],
                    [[app, label] for app, label in sorted(self.tuned.items())],
                    title="autotuned configurations",
                )
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ServerStats:
    """Point-in-time server counters (live between submit and drain)."""

    submitted: int
    served: int
    pending: int
    batches: int


class Server:
    """A dynamic-batching FHE request server over the Neo device model.

    Args:
        params: Table 4 parameter set (or a ``ParameterSet``).
        config: pipeline configuration; its ``streams`` are split across lanes.
        policy: admission policy name or instance (fifo / edf / bucketed).
        max_batch: dynamic-batch capacity, ciphertexts.
        max_wait_s: continuous-batching window, simulated seconds.
        lanes: concurrent batch slots (each gets ``streams // lanes`` streams).
        model: service-time model; defaults to :class:`NeoServiceModel`.
        overload: admission-control policy (bounded queue, load shedding,
            priority eviction, tenant quotas); ``None`` keeps the
            pre-overload behaviour -- every submitted request is queued.
        tracer: span sink for per-request traces.  ``None`` falls back to
            the process-wide :func:`~repro.telemetry.tracing.active_tracer`
            at drain time (still ``None`` -> no spans, no cost).
    """

    def __init__(
        self,
        params: str = "C",
        config: PipelineConfig = NEO_CONFIG,
        policy: Union[str, AdmissionPolicy] = "fifo",
        max_batch: int = 64,
        max_wait_s: float = 30.0,
        lanes: int = 2,
        model=None,
        trace_cache: Optional[TraceCache] = None,
        overload: Optional[OverloadPolicy] = None,
        tracer: Optional[Tracer] = None,
        device: DeviceSpec = A100,
        autotune: bool = False,
    ):
        if lanes < 1:
            raise ValueError(f"need at least one lane, got {lanes}")
        self.policy = get_policy(policy)
        self.batcher = ContinuousBatcher(self.policy, max_batch, max_wait_s)
        self.lanes = lanes
        self.streams_per_lane = max(1, config.streams // lanes)
        self.model = model or NeoServiceModel(
            params, config, trace_cache, device=device, autotune=autotune
        )
        self.overload = overload
        self.tracer = tracer
        self._submitted: List[Request] = []
        self._cancels: Dict[int, float] = {}
        self._next_rid = 0
        self._last_report: Optional[ServingReport] = None
        #: JSONable constructor arguments for snapshot/replay capture
        #: (:mod:`repro.serving.replay`); the pipeline config is assumed
        #: to be the default ``NEO_CONFIG`` on replay.
        self.snapshot_config: Dict[str, object] = {
            "params": params if isinstance(params, str)
            else getattr(params, "name", "C"),
            "policy": self.policy.name,
            "max_batch": max_batch,
            "max_wait_s": max_wait_s,
            "lanes": lanes,
            "overload": overload.to_jsonable() if overload else None,
        }

    # -- admission ----------------------------------------------------------------

    def submit(
        self,
        request: Optional[Request] = None,
        *,
        app: Optional[str] = None,
        size: int = 1,
        arrival_s: float = 0.0,
        slo_s: float = 0.0,
        tenant: str = "default",
        priority: int = 1,
    ) -> Request:
        """Enqueue one request (an instance, or fields to build one)."""
        if request is None:
            if app is None:
                raise ValueError("submit needs a Request or an app name")
            request = Request(
                rid=self._next_rid,
                app=app,
                size=size,
                arrival_s=arrival_s,
                slo_s=slo_s,
                tenant=tenant,
                priority=priority,
            )
        self._next_rid = max(self._next_rid, request.rid) + 1
        self._submitted.append(request)
        return request

    def submit_many(self, requests: Iterable[Request]) -> int:
        count = 0
        for request in requests:
            self.submit(request)
            count += 1
        return count

    def cancel(self, rid: int, at_s: float) -> None:
        """Schedule a cancellation of request `rid` at simulated `at_s`.

        A cancel that lands while the request is still queued removes it
        (reported under ``cancelled``); once its batch has dispatched the
        cancel is too late and the request completes normally.  The
        earliest cancel wins when the same rid is cancelled twice.
        """
        if at_s < 0:
            raise ValueError(f"cancel time must be >= 0, got {at_s}")
        current = self._cancels.get(rid)
        self._cancels[rid] = at_s if current is None else min(current, at_s)

    def stats(self) -> ServerStats:
        report = self._last_report
        return ServerStats(
            submitted=len(self._submitted),
            served=report.served if report else 0,
            pending=len(self._submitted) - (report.served if report else 0),
            batches=len(report.batches) if report else 0,
        )

    @property
    def last_report(self) -> Optional[ServingReport]:
        return self._last_report

    # -- simulation ---------------------------------------------------------------

    def drain(self) -> ServingReport:
        """Replay every submitted request to completion; return the report.

        The loop advances the simulated clock to the next decision point
        (an arrival, a lane becoming free, a batching window expiring, or
        a scheduled cancellation), admits due arrivals through the
        overload controller (when configured), and dispatches whatever
        batch the batcher deems ready onto the earliest-free lane.  No
        randomness anywhere: the schedule is a pure function of the
        submitted trace plus any scheduled cancels.
        """
        arrivals = sorted(self._submitted, key=lambda r: (r.arrival_s, r.rid))
        capacity = self.overload.queue_capacity if self.overload else None
        controller = (
            AdmissionController(self.overload) if self.overload else None
        )
        queue = RequestQueue(capacity=capacity)
        lane_free = [0.0] * self.lanes
        records: List[RequestRecord] = []
        batches: List[Batch] = []
        shed: List[Request] = []
        rejected: List[Request] = []
        cancelled: List[Request] = []
        index, total = 0, len(arrivals)
        now = 0.0
        next_bid = 0

        cancel_events = sorted(
            (at_s, rid) for rid, at_s in self._cancels.items()
        )
        cindex = 0
        infinity = float("inf")

        def admit(request: Request) -> None:
            """Route one due arrival: cancel-before-arrival, then policy."""
            cancel_at = self._cancels.get(request.rid)
            if cancel_at is not None and cancel_at <= request.arrival_s:
                # Cancelled before it ever reached the queue; the later
                # cancel event pops nothing and is a no-op.
                cancelled.append(request)
                return
            if controller is None:
                queue.push(request, request.arrival_s)
                return
            decision = controller.admit(request, queue, request.arrival_s)
            if decision.outcome == SHED:
                shed.append(request)
            elif decision.outcome == REJECTED:
                rejected.append(request)
            elif decision.victim is not None:
                shed.append(decision.victim)

        def advance_events(current: float) -> None:
            """Apply due arrivals and cancels interleaved in event order.

            The clock can jump (busy lanes, window sleeps); replaying the
            skipped-over events in their own time order keeps the queue's
            depth samples monotone and the schedule independent of how
            far each jump happened to land.
            """
            nonlocal index, cindex
            while True:
                arrival_t = (
                    arrivals[index].arrival_s if index < total else infinity
                )
                cancel_t = (
                    cancel_events[cindex][0]
                    if cindex < len(cancel_events)
                    else infinity
                )
                if arrival_t <= current and arrival_t <= cancel_t:
                    admit(arrivals[index])
                    index += 1
                elif cancel_t <= current:
                    at_s, rid = cancel_events[cindex]
                    cindex += 1
                    victim = queue.pop_rid(rid, at_s)
                    if victim is not None:
                        cancelled.append(victim)
                else:
                    return

        while index < total or queue:
            if not queue:
                now = max(now, arrivals[index].arrival_s)
            advance_events(now)
            if not queue:
                continue

            lane = min(range(self.lanes), key=lane_free.__getitem__)
            if lane_free[lane] > now:
                # Every lane is busy: run the clock to the first free slot
                # (admitting anything that arrives on the way).
                now = lane_free[lane]
                continue

            draining = index >= total
            take, window_deadline = self.batcher.candidate(
                queue.requests, now, draining
            )
            if take is None:
                # The head batch is still filling: sleep until its window
                # expires, the next arrival tops it up, or a cancellation
                # changes the queue's composition.
                next_arrival = (
                    arrivals[index].arrival_s if index < total else infinity
                )
                next_cancel = (
                    cancel_events[cindex][0]
                    if cindex < len(cancel_events)
                    else infinity
                )
                now = min(window_deadline, next_arrival, next_cancel)
                continue

            total_size = sum(r.size for r in take)
            executed = self.policy.executed_size(total_size)
            app = take[0].app
            service_at = getattr(self.model, "service_time_at", None)
            if service_at is not None:
                service = service_at(
                    app, executed, self.streams_per_lane, now
                )
            else:
                service = self.model.service_time_s(
                    app, executed, self.streams_per_lane
                )
            start = now
            finish = start + service
            lane_free[lane] = finish
            queue.remove(take, now)
            batch = Batch(
                bid=next_bid,
                app=app,
                requests=tuple(take),
                executed_size=executed,
                formed_s=now,
            )
            next_bid += 1
            batches.append(batch)
            records.extend(
                RequestRecord(
                    request=r,
                    batch_id=batch.bid,
                    lane=lane,
                    batch_size=executed,
                    dispatch_s=now,
                    start_s=start,
                    finish_s=finish,
                )
                for r in take
            )

        accounted = len(records) + len(shed) + len(rejected) + len(cancelled)
        if accounted != total:
            raise RuntimeError(
                "serving conservation violated: "
                f"{len(records)} served + {len(shed)} shed + "
                f"{len(rejected)} rejected + {len(cancelled)} cancelled "
                f"!= {total} offered"
            )

        caches = {
            name: stats.as_dict() for name, stats in all_cache_stats().items()
        }
        # The serving run's trace cache is the model's own instance, not the
        # process-global one the registry tracks -- report the live one.
        caches["trace_cache"] = self.model.cache_stats().as_dict()
        report = ServingReport(
            records=records,
            batches=batches,
            lanes=self.lanes,
            streams_per_lane=self.streams_per_lane,
            makespan_s=max((r.finish_s for r in records), default=0.0),
            mean_queue_depth=queue.mean_depth(),
            max_queue_depth=queue.max_depth(),
            shed=shed,
            rejected=rejected,
            cancelled=cancelled,
            admission=controller.ledger.as_dict() if controller else {},
            queue_capacity=queue.capacity,
            peak_pressure=controller.peak_pressure if controller else 0.0,
            cache=self.model.cache_stats(),
            op_plans=ksplan.keyswitch_plan_cache_stats(),
            caches=caches,
            tuned=(
                self.model.tuned_summary()
                if hasattr(self.model, "tuned_summary")
                else {}
            ),
        )
        self._last_report = report
        self._emit_telemetry(report, queue)
        return report

    # -- telemetry ----------------------------------------------------------------

    def _emit_telemetry(self, report: ServingReport, queue: RequestQueue) -> None:
        """Spans and metrics for one drain; no-ops unless enabled/active."""
        tracer = self.tracer if self.tracer is not None else active_tracer()
        if tracer is not None:
            self._record_spans(tracer, report)
        registry = global_registry()
        if registry.enabled:
            self._record_metrics(registry, report, queue)

    def _record_spans(self, tracer: Tracer, report: ServingReport) -> None:
        """One trace per request plus one kernel trace per batch *shape*.

        Every batch of the same (app, executed BatchSize) shape replays the
        identical simulated kernel schedule, so per-kernel spans are
        recorded once per shape under a ``shape-<app>-b<size>`` trace
        (timestamps relative to batch start) and linked from each request's
        batch span via its ``kernel_trace`` attribute -- an OpenTelemetry-
        style span link.  Per-request cost stays at three spans while the
        full queue -> batch -> op -> kernel path remains reconstructable
        (``repro trace`` splices the linked kernel trace back in).
        """
        span_model = getattr(self.model, "batch_spans", None)
        shapes: Dict[tuple, tuple] = {}

        def kernel_trace(app: str, size: int) -> tuple:
            key = (app, size)
            cached = shapes.get(key)
            if cached is None:
                descriptors, total = span_model(
                    app, size, self.streams_per_lane
                )
                tid = f"shape-{app}-b{size}"
                root = tracer.record_span(
                    tid, "batch_kernels", 0.0,
                    max((d[4] for d in descriptors), default=0.0),
                    category="kernel", app=app, executed_size=size,
                    kernels=total, kernels_traced=len(descriptors),
                )
                for name, resource, stream, rel_start, rel_end in descriptors:
                    tracer.record_span(
                        tid, name, rel_start, rel_end,
                        parent_id=root.span_id, category="kernel",
                        resource=resource, stream=stream,
                    )
                cached = (tid, total, len(descriptors))
                shapes[key] = cached
            return cached

        for record in report.records:
            request = record.request
            tid = request.trace_id
            root = tracer.record_span(
                tid, "request", request.arrival_s, record.finish_s,
                category="serving", app=request.app, rid=request.rid,
                size=request.size, lane=record.lane, slo_met=record.slo_met,
            )
            tracer.record_span(
                tid, "queue_wait", request.arrival_s, record.start_s,
                parent_id=root.span_id, category="serving",
            )
            link, total_kernels, traced = "", 0, 0
            if span_model is not None:
                link, total_kernels, traced = kernel_trace(
                    request.app, record.batch_size
                )
            tracer.record_span(
                tid, "batch", record.start_s, record.finish_s,
                parent_id=root.span_id, category="serving",
                bid=record.batch_id, executed_size=record.batch_size,
                app=request.app, kernels=total_kernels,
                kernels_traced=traced, kernel_trace=link,
            )

    def _record_metrics(
        self, registry: MetricsRegistry, report: ServingReport,
        queue: RequestQueue,
    ) -> None:
        requests_total = registry.counter(
            "serving_requests_total", "Requests served, by application",
            labelnames=("app",),
        )
        latency_hist = registry.histogram(
            "serving_latency_seconds",
            "Arrival-to-completion latency, simulated seconds",
            labelnames=("app",),
        )
        wait_hist = registry.histogram(
            "serving_queue_wait_seconds",
            "Admission-queue wait before the batch started",
        )
        # Pre-aggregate per-app counters and batch the histogram observes:
        # cell resolution and locking, not the arithmetic, is the
        # per-record cost, so pay it once per series rather than per value.
        latencies_by_app: Dict[str, List[float]] = {}
        waits: List[float] = []
        for record in report.records:
            app = record.request.app
            values = latencies_by_app.get(app)
            if values is None:
                values = latencies_by_app[app] = []
            values.append(record.latency_s)
            waits.append(record.queue_wait_s)
        for app, values in latencies_by_app.items():
            latency_hist.labels(app=app).observe_many(values)
        wait_hist.observe_many(waits)
        for app, values in latencies_by_app.items():
            requests_total.labels(app=app).inc(len(values))

        batches_total = registry.counter(
            "serving_batches_total", "Dynamic batches formed, by application",
            labelnames=("app",),
        )
        batch_hist = registry.histogram(
            "serving_batch_size", "Executed BatchSize per dynamic batch",
            buckets=BATCH_SIZE_BUCKETS,
        )
        batches_by_app: Dict[str, int] = {}
        for batch in report.batches:
            batches_by_app[batch.app] = batches_by_app.get(batch.app, 0) + 1
        batch_hist.observe_many([b.executed_size for b in report.batches])
        for app, count in batches_by_app.items():
            batches_total.labels(app=app).inc(count)

        depth_hist = registry.histogram(
            "serving_queue_depth", "Queue depth at every queue mutation",
            buckets=QUEUE_DEPTH_BUCKETS,
        )
        depth_hist.observe_many([depth for _, depth in queue.depth_samples()])
        registry.gauge(
            "serving_queue_depth_peak", "Peak admission-queue depth",
        ).set(report.max_queue_depth)
        registry.gauge(
            "serving_queue_depth_mean", "Time-weighted mean queue depth",
        ).set(report.mean_queue_depth)
        registry.gauge(
            "serving_makespan_seconds", "Simulated makespan of the last drain",
        ).set(report.makespan_s)
        registry.gauge(
            "serving_slo_attainment", "Fraction of requests meeting their SLO",
        ).set(report.slo_attainment)

        if self.overload is not None or report.offered != report.served:
            shed_total = registry.counter(
                "serving_requests_shed_total",
                "Requests shed by overload policy, by service tier",
                labelnames=("tier",),
            )
            rejected_total = registry.counter(
                "serving_requests_rejected_total",
                "Requests rejected (queue full / tenant quota), by tier",
                labelnames=("tier",),
            )
            cancelled_total = registry.counter(
                "serving_requests_cancelled_total",
                "Requests cancelled while queued, by service tier",
                labelnames=("tier",),
            )
            for bucket, counter in (
                (report.shed, shed_total),
                (report.rejected, rejected_total),
                (report.cancelled, cancelled_total),
            ):
                by_tier: Dict[str, int] = {}
                for request in bucket:
                    by_tier[request.tier] = by_tier.get(request.tier, 0) + 1
                for tier, count in by_tier.items():
                    counter.labels(tier=tier).inc(count)
            registry.gauge(
                "serving_queue_pressure_peak",
                "Peak admission-queue fill fraction in [0, 1]",
            ).set(report.peak_pressure)

        hits = registry.gauge(
            "cache_hits", "Cache hits, per cache surface", labelnames=("cache",)
        )
        misses = registry.gauge(
            "cache_misses", "Cache misses, per cache surface",
            labelnames=("cache",),
        )
        hit_rate = registry.gauge(
            "cache_hit_rate", "Hit rate in [0, 1], per cache surface",
            labelnames=("cache",),
        )
        for name, stats in report.caches.items():
            hits.labels(cache=name).set(stats.get("hits", 0))
            misses.labels(cache=name).set(stats.get("misses", 0))
            hit_rate.labels(cache=name).set(stats.get("hit_rate", 0.0))

        noise_fn = getattr(self.model, "noise_trajectory", None)
        if noise_fn is not None:
            budget = registry.gauge(
                "fhe_noise_budget_bits_modeled",
                "Modeled remaining noise budget per app and schedule level",
                labelnames=("app", "level"),
            )
            for app in sorted({r.request.app for r in report.records}):
                for point in noise_fn(app):
                    budget.labels(app=app, level=str(point.level)).set(
                        point.budget_bits
                    )
