"""Direct tests of the Hybrid and KLSS key-switching pipelines (Fig. 5)."""

import numpy as np
import pytest

from repro.ckks.keyswitch import hybrid, klss
from repro.math.polynomial import RnsPolynomial
from repro.math.rns import RnsBasis


@pytest.fixture()
def random_ring_element(params, rng):
    coeffs = rng.integers(-(2**20), 2**20, size=params.degree).astype(object)
    return RnsPolynomial.from_int_coeffs(
        coeffs, params.degree, params.q_basis(params.max_level)
    )


class TestDigitDecomposition:
    def test_digit_count_and_bases(self, params, random_ring_element):
        digits = hybrid.decompose_digits(random_ring_element, params)
        level = params.max_level
        assert len(digits) == params.beta(level)
        for j, digit in enumerate(digits):
            start, stop = params.digit_range(j, level)
            assert digit.basis.moduli == params.moduli[start:stop]

    def test_digits_are_residues(self, params, random_ring_element):
        """Digit j's limbs are exactly the input's limbs of group j."""
        digits = hybrid.decompose_digits(random_ring_element, params)
        for j, digit in enumerate(digits):
            start, stop = params.digit_range(j, params.max_level)
            for limb, orig in zip(digit.limbs, random_ring_element.limbs[start:stop]):
                assert (limb == orig).all()


class TestModUpDown:
    def test_mod_up_value(self, params, random_ring_element):
        """Mod Up represents digit + u*Q_j for 0 <= u <= alpha."""
        level = params.max_level
        digits = hybrid.decompose_digits(random_ring_element, params)
        digit = digits[0]
        raised = hybrid.mod_up(digit, 0, params, level)
        group_product = digit.basis.product
        raised_values = raised.basis.compose(raised.limbs)
        digit_values = digit.basis.compose(digit.limbs)
        for got, want in zip(raised_values, digit_values):
            u, rem = divmod(int(got) - int(want), group_product)
            assert rem == 0 and 0 <= u <= params.alpha

    def test_mod_down_divides_by_p(self, params, rng):
        """ModDown(P * x) == x (up to rounding)."""
        level = params.max_level
        pq = params.pq_basis(level)
        coeffs = rng.integers(-(2**20), 2**20, size=params.degree).astype(object)
        x = RnsPolynomial.from_int_coeffs(coeffs, params.degree, pq)
        scaled = x.multiply_scalar(params.special_product)
        down = hybrid.mod_down(scaled, params, level)
        recovered = down.to_int_coeffs()
        assert (np.abs((recovered - coeffs).astype(np.int64)) <= params.alpha + 1).all()

    def test_restrict_to_pq(self, params, keyset):
        level = 2
        b, _ = keyset["relin"].pairs[0]
        restricted = hybrid.restrict_to_pq(b, params, level)
        assert restricted.basis.moduli == params.pq_basis(level).moduli


class TestHybridKeyswitch:
    def test_keyswitch_identity(self, params, keyset, random_ring_element):
        """p0 + p1*s ~ d * s**2 (key-switching correctness for the relin key)."""
        basis = params.q_basis(params.max_level)
        s = keyset["secret"].poly(basis)
        s_sq = s.multiply(s).from_ntt()
        d = random_ring_element
        p0, p1 = hybrid.keyswitch(d, keyset["relin"], params)
        got = p0.add(p1.multiply(s).from_ntt()).to_int_coeffs()
        want = d.multiply(s_sq).from_ntt().to_int_coeffs()
        # noise bound: keyswitch noise is a few bits above the error std
        noise = np.abs((got - want).astype(np.float64)).max()
        assert noise < 2**14, f"keyswitch noise too large: {noise}"

    def test_keyswitch_at_lower_level(self, params, keyset, rng):
        level = 2
        coeffs = rng.integers(-(2**20), 2**20, size=params.degree).astype(object)
        d = RnsPolynomial.from_int_coeffs(coeffs, params.degree, params.q_basis(level))
        basis = params.q_basis(level)
        s = keyset["secret"].poly(basis)
        s_sq = s.multiply(s).from_ntt()
        p0, p1 = hybrid.keyswitch(d, keyset["relin"], params)
        got = p0.add(p1.multiply(s).from_ntt()).to_int_coeffs()
        want = d.multiply(s_sq).from_ntt().to_int_coeffs()
        assert np.abs((got - want).astype(np.float64)).max() < 2**14


class TestKlssKeyswitch:
    def test_klss_matches_hybrid_closely(self, params, keyset, random_ring_element):
        """Both pipelines produce the same switch up to their small noises."""
        d = random_ring_element
        h0, h1 = hybrid.keyswitch(d, keyset["relin"], params)
        k0, k1 = klss.keyswitch(d, keyset["relin"], params)
        basis = params.q_basis(params.max_level)
        s = keyset["secret"].poly(basis)
        hy = h0.add(h1.multiply(s).from_ntt()).to_int_coeffs()
        kl = k0.add(k1.multiply(s).from_ntt()).to_int_coeffs()
        assert np.abs((hy - kl).astype(np.float64)).max() < 2**14

    def test_klss_identity(self, params, keyset, random_ring_element):
        d = random_ring_element
        basis = params.q_basis(params.max_level)
        s = keyset["secret"].poly(basis)
        s_sq = s.multiply(s).from_ntt()
        p0, p1 = klss.keyswitch(d, keyset["relin"], params)
        got = p0.add(p1.multiply(s).from_ntt()).to_int_coeffs()
        want = d.multiply(s_sq).from_ntt().to_int_coeffs()
        assert np.abs((got - want).astype(np.float64)).max() < 2**14

    def test_decomposed_key_is_cached(self, params, keyset):
        key1 = klss.decompose_key(keyset["relin"], params, params.max_level)
        key2 = klss.decompose_key(keyset["relin"], params, params.max_level)
        assert key1 is key2

    def test_decomposition_shape(self, params, keyset):
        level = params.max_level
        alpha_prime, beta, beta_tilde = params.klss_dims(level)
        key = klss.decompose_key(keyset["relin"], params, level)
        assert key.beta_tilde == beta_tilde
        assert len(key.digit_pairs[0]) == beta
        assert len(key.t_basis) == alpha_prime

    def test_gadget_identity(self, params, keyset):
        """sum_i digit_i * G_hat_i == v (mod PQ) for the decomposed key."""
        level = params.max_level
        key = klss.decompose_key(keyset["relin"], params, level)
        pq = params.pq_basis(level)
        b_orig = hybrid.restrict_to_pq(keyset["relin"].pairs[0][0], params, level)
        want = pq.compose(b_orig.limbs)
        total = np.zeros(params.degree, dtype=object)
        for i, g_hat in enumerate(key.gadget_factors):
            digit_poly = key.digit_pairs[i][0][0].from_ntt()
            digit_value = key.t_basis.compose(digit_poly.limbs)
            total += digit_value * g_hat
        assert ((total - want) % pq.product == 0).all()

    def test_bound_violation_detected(self, params, keyset):
        """A deliberately tiny T must trip the Eq. 4 guard."""
        from repro.math.rns import RnsBasis as RB

        tiny = RB(params.aux_primes[:1])
        with pytest.raises(klss.KlssBoundError):
            klss._check_ip_bound(params, params.max_level, tiny)

    def test_requires_klss_config(self, keyset, random_ring_element):
        from repro.ckks import small_test_parameters

        plain = small_test_parameters(degree=32, max_level=5, wordsize=25, dnum=3)
        with pytest.raises(ValueError):
            klss.decompose_key(keyset["relin"], plain, 5)

    def test_limb_groups(self):
        assert klss._limb_groups(7, 3) == [(0, 3), (3, 6), (6, 7)]
        assert klss._limb_groups(4, 2) == [(0, 2), (2, 4)]
